#!/usr/bin/env python
"""Multi-worker cluster serving: cache-aware routing over a 4-worker fleet.

Three users hold multi-turn conversations against a
:class:`~repro.serve.cluster.ClusterFrontend`; arrivals are interleaved by a
seeded Poisson trace.  Because every turn embeds the full history, a turn's
prefix lives in exactly one worker's cache — cache-aware routing lands
follow-up turns there (warm TTFT), while round-robin would scatter them into
cold prefills.  The script reports the routing decisions, per-worker
prefix-cache hit rates, and the fleet's p50/p99 TTFT.

Run with::

    python examples/cluster_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.llm import ModelConfig, TransformerLM
from repro.serve import Request, SamplingParams, SchedulerConfig
from repro.serve.cluster import ClusterFrontend
from repro.workloads import multi_turn_conversation, poisson_arrivals

NUM_WORKERS = 4
NUM_USERS = 3
NUM_TURNS = 3
SYSTEM_TOKENS = 1024
TURN_TOKENS = 48
ANSWER_TOKENS = 8


def main() -> None:
    config = ModelConfig(num_layers=2, hidden_dim=64, num_heads=4,
                         num_kv_heads=2, ffn_dim=128, vocab_size=512,
                         max_context=65536, name="cluster-demo")
    model = TransformerLM(config, seed=0)
    cluster = ClusterFrontend(
        model,
        num_workers=NUM_WORKERS,
        placement="cache_aware",
        scheduler_config=SchedulerConfig(max_prefill_chunk_tokens=512),
    )

    conversations = {
        user: multi_turn_conversation(num_turns=NUM_TURNS,
                                      system_tokens=SYSTEM_TOKENS,
                                      turn_tokens=TURN_TOKENS, seed=user)
        for user in range(NUM_USERS)
    }
    histories = {user: conversations[user].initial_history()
                 for user in range(NUM_USERS)}

    # Poisson arrival order over the users' turns (drop events beyond each
    # user's last turn, keep going until every conversation completes).
    events, seen = [], {}
    for event in poisson_arrivals(64, rate=2.0, num_users=NUM_USERS, seed=13):
        if event.turn >= NUM_TURNS or seen.get(event.user, 0) >= NUM_TURNS:
            continue
        events.append(event)
        seen[event.user] = seen.get(event.user, 0) + 1
        if all(seen.get(u, 0) >= NUM_TURNS for u in range(NUM_USERS)):
            break

    print(f"{NUM_WORKERS} workers, {NUM_USERS} users x {NUM_TURNS} turns, "
          f"{SYSTEM_TOKENS}-token system prompts, cache-aware routing\n")
    print("arrival  user turn  -> worker  matched  TTFT")
    ttfts = []
    #: user -> (request_id, prompt, event, placement); a user's next turn
    #: needs their previous answer, but different users stay in flight
    #: together — that concurrency is what spreads load across the fleet.
    in_flight: dict[int, tuple] = {}

    def drain() -> None:
        finals = cluster.run()
        for user, (request_id, prompt, event, placement) in sorted(
                in_flight.items()):
            out = finals[request_id]
            histories[user] = conversations[user].extend_history(
                prompt, out.token_ids)
            ttfts.append(out.metrics.ttft)
            print(f"  {event.time:6.2f}s  u{event.user}   t{event.turn}   ->"
                  f"  w{placement.worker_id}      "
                  f"{placement.matched_tokens:5d}  {out.metrics.ttft:.6f}s")
        in_flight.clear()

    for event in events:
        if event.user in in_flight:
            drain()
        conversation = conversations[event.user]
        prompt = conversation.prompt_for_turn(event.turn,
                                              histories[event.user])
        request_id = f"u{event.user}t{event.turn}"
        cluster.submit(Request(request_id=request_id, prompt_ids=prompt,
                               sampling=SamplingParams(
                                   max_new_tokens=ANSWER_TOKENS)))
        in_flight[event.user] = (request_id, prompt, event,
                                 cluster.placements[-1])
    drain()

    print("\nper-worker prefix-cache hit rates:")
    for worker in cluster.workers:
        row = worker.describe()
        print(f"  w{row['worker_id']}: {row['requests_finished']} requests, "
              f"lookup hit rate {row['prefix_cache_hit_rate']:.0%}, "
              f"token hit rate {row['prefix_token_hit_rate']:.0%}, "
              f"clock {row['clock']:.6f}s")

    fleet = cluster.fleet_metrics()
    p50, p99 = np.percentile(ttfts, [50, 99])
    print(f"\nfleet: {fleet.requests_finished} requests, "
          f"{fleet.generated_tokens} tokens, makespan {fleet.clock:.6f}s")
    print(f"fleet TTFT: p50 {p50:.6f}s, p99 {p99:.6f}s")
    print(f"directory: {len(cluster.directory)} fingerprints, "
          f"events {cluster.directory.events}")

    # Fused decode-round shape + host wall-time breakdown across the fleet:
    # every worker batches its RUNNING requests into one model round per
    # step, so mean batch size tracks how much decode concurrency the
    # routing actually produced.
    histogram = ", ".join(
        f"{bucket}: {count}"
        for bucket, count in fleet.decode_batch_size_histogram.items()
        if count
    )
    print(f"decode rounds: {fleet.decode_batch_rounds} fused batches, "
          f"mean size {fleet.mean_decode_batch_size:.2f} ({histogram})")
    print(f"decode stage wall-time: select {fleet.decode_select_seconds:.4f}s "
          f"(score {fleet.decode_score_seconds:.4f}s, "
          f"top-k {fleet.decode_topk_seconds:.4f}s), "
          f"gather {fleet.decode_gather_seconds:.4f}s, "
          f"attention {fleet.decode_attention_seconds:.4f}s, "
          f"maintenance {fleet.decode_maintenance_seconds:.4f}s")


if __name__ == "__main__":
    main()
