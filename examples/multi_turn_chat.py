#!/usr/bin/env python
"""Multi-turn chat demo: shared-prefix caching across conversation turns.

Three user turns share one system prompt; each turn's prompt embeds the full
conversation so far.  With ``enable_prefix_caching=True`` the engine serves
turn 2 and 3 from cached KV blocks (and reuses the PQ codebooks/codes built
for the shared prefix), so only each turn's new tokens are prefilled — the
per-turn TTFT and the prefix-cache hit rate printed below show the effect.

Run with::

    python examples/multi_turn_chat.py
"""

from __future__ import annotations

from repro.baselines import SelectionBudget
from repro.core import PQCacheConfig
from repro.llm import ModelConfig, TransformerLM
from repro.serve import (
    InferenceEngine,
    PolicySpec,
    Request,
    SamplingParams,
    SchedulerConfig,
)
from repro.workloads import multi_turn_conversation

NUM_TURNS = 3
SYSTEM_TOKENS = 2048
TURN_TOKENS = 64
ANSWER_TOKENS = 12


def main() -> None:
    config = ModelConfig(
        num_layers=2, hidden_dim=64, num_heads=4, num_kv_heads=2,
        ffn_dim=128, vocab_size=512, name="chat-demo",
    )
    model = TransformerLM(config, seed=0)
    engine = InferenceEngine(
        model,
        scheduler_config=SchedulerConfig(max_prefill_chunk_tokens=512),
        enable_prefix_caching=True,
    )
    budget = SelectionBudget(token_ratio=0.2, num_initial=4, num_local=16)
    pq_config = PQCacheConfig(max_kmeans_iters=8, gpu_cache_tokens=512)

    conversation = multi_turn_conversation(
        num_turns=NUM_TURNS, system_tokens=SYSTEM_TOKENS,
        turn_tokens=TURN_TOKENS, seed=0,
    )
    history = conversation.initial_history()

    print(f"system prompt: {SYSTEM_TOKENS} tokens, "
          f"{NUM_TURNS} turns x {TURN_TOKENS} tokens")
    print(f"{'turn':>4} {'prompt':>8} {'cached':>8} {'hit %':>7} "
          f"{'TTFT (s)':>10}  answer")
    for turn in range(conversation.num_turns):
        prompt = conversation.prompt_for_turn(turn, history)
        request = Request(
            prompt_ids=prompt,
            sampling=SamplingParams(max_new_tokens=ANSWER_TOKENS),
            policy_spec=PolicySpec.named("pqcache", budget, pq_config=pq_config),
        )
        request_id = engine.submit(request)
        output = engine.run()[request_id]
        cached = output.metrics.cached_prefix_tokens
        print(f"{turn + 1:>4} {len(prompt):>8} {cached:>8} "
              f"{cached / len(prompt):>6.1%} {output.metrics.ttft:>10.6f}  "
              f"{output.token_ids}")
        history = conversation.extend_history(prompt, output.token_ids)

    metrics = engine.metrics
    print(f"\nprefix cache: {metrics.prefix_cache_hits}/"
          f"{metrics.prefix_cache_queries} lookups hit, "
          f"{metrics.prefix_cache_hit_tokens} of "
          f"{metrics.prefix_prompt_tokens} prompt tokens served from cache "
          f"({metrics.prefix_token_hit_rate:.1%})")
    print(f"engine clock: {metrics.clock:.5f}s simulated, "
          f"{metrics.generated_tokens} tokens generated")


if __name__ == "__main__":
    main()
