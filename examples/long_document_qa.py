#!/usr/bin/env python
"""Long-document QA: compare KVCache policies on planted-fact documents.

Reproduces a miniature version of the paper's Table 2 / Table 3 experiment:
synthetic long documents with planted facts, questions either after or before
the document, and a panel of selective-attention policies scored by whether
they still attend to the evidence.

Run with::

    python examples/long_document_qa.py
"""

from __future__ import annotations

from repro.baselines import SelectionBudget, build_policy
from repro.core import PQCacheConfig
from repro.eval import EvaluationHarness
from repro.llm import ModelConfig
from repro.workloads import multi_hop_qa, single_fact_qa


def build_factories(budget: SelectionBudget) -> dict:
    pq_config = PQCacheConfig(num_partitions=2, num_bits=6, max_kmeans_iters=12,
                              gpu_cache_tokens=0)
    return {
        "full": lambda: build_policy("full", budget),
        "oracle": lambda: build_policy("oracle", budget),
        "h2o(c)": lambda: build_policy("h2o", budget),
        "snapkv(c)": lambda: build_policy("snapkv", budget),
        "infllm": lambda: build_policy("infllm", budget),
        "sparq": lambda: build_policy("sparq", budget),
        "pqcache": lambda: build_policy("pqcache", budget, pq_config=pq_config),
    }


def main() -> None:
    harness = EvaluationHarness(ModelConfig.tiny(), seed=0, qk_coupling=1.0)
    budget = SelectionBudget(token_ratio=0.1, comm_ratio=1 / 128,
                             num_initial=4, num_local=16)
    factories = build_factories(budget)

    print("=== Questions at the end of the document (standard benchmark) ===")
    standard = [
        single_fact_qa(num_samples=4, seq_len=512, seed=0, name="single-doc-qa"),
        multi_hop_qa(num_samples=4, seq_len=512, seed=1, name="multi-hop-qa"),
    ]
    table = harness.evaluate_suite(factories, standard)
    print(EvaluationHarness.format_table(table))

    print("\n=== Questions placed before the document (Table 3 setting) ===")
    question_first = [
        single_fact_qa(num_samples=4, seq_len=512, seed=0,
                       question_position="start", name="single-doc-qa"),
        multi_hop_qa(num_samples=4, seq_len=512, seed=1,
                     question_position="start", name="multi-hop-qa"),
    ]
    table_first = harness.evaluate_suite(factories, question_first)
    print(EvaluationHarness.format_table(table_first))

    print("\nTakeaway: SnapKV-style methods depend on the question sitting at the")
    print("end of the prompt; PQCache retrieves evidence wherever it is, so its")
    print("score is stable across both layouts (paper Table 3).")


if __name__ == "__main__":
    main()
