#!/usr/bin/env python
"""Latency planning: prefill overlap, TT2T/TPOT, and the adaptive K-Means budget.

Uses the analytical device models to answer the deployment questions the
paper's efficiency section addresses:

* how long is the prefilling phase, and is PQ construction hidden behind it?
* how many K-Means iterations can the CPU afford (Eq. 3)?
* what per-token decode latency should each method expect, and how does the
  GPU block cache change it?

Run with::

    python examples/latency_planner.py
"""

from __future__ import annotations

from repro.core import AdaptiveIterationPlanner, ClusteringProfile, ComputeProfile, PQCacheConfig
from repro.llm import ModelConfig
from repro.memory import HardwareSpec, LatencyModel


def main() -> None:
    hardware = HardwareSpec.paper_testbed()
    model = ModelConfig.llama3_8b()
    latency = LatencyModel(hardware, model,
                           PQCacheConfig(num_partitions=2, num_bits=6),
                           token_ratio=0.2, comm_ratio=1 / 128)
    seq_lens = (16_384, 65_536, 131_072)

    print(f"hardware: {hardware.gpu.name} + {hardware.cpu.name} over "
          f"{hardware.interconnect.name}; model: {model.name}\n")

    # Adaptive K-Means budget fitted on the device model's own curves (Eq. 1-3).
    planner = AdaptiveIterationPlanner(min_iterations=1, max_iterations=100)
    planner.fit_clustering([ClusteringProfile(s, t, latency.layer_clustering_seconds(s, t))
                            for s in seq_lens for t in (1, 8, 32)])
    planner.fit_compute([ComputeProfile(s, latency.layer_prefill_compute_seconds(s))
                         for s in (4096,) + seq_lens])

    print("prefilling phase (per layer seconds / whole-model makespan):")
    for seq_len in seq_lens:
        iters = planner.max_iterations_for(seq_len)
        parts = latency.prefill_decomposition(seq_len, iterations=iters)
        timeline = latency.prefill_timeline(seq_len, "pqcache", iterations=iters)
        print(f"  s={seq_len:>7,}: compute {parts['compute']:.3f}s, "
              f"offload {parts['offload']:.3f}s, kmeans {parts['clustering']:.3f}s "
              f"({iters} iters) -> prefill makespan {timeline.makespan:.1f}s")

    print("\ndecode latency (seconds per output token, 0.6 GPU-cache hit rate):")
    methods = ("pqcache", "snapkv", "sparq", "infllm")
    header = "  seq len   " + "  ".join(f"{m:>9}" for m in methods)
    print(header)
    for seq_len in seq_lens:
        row = "  ".join(
            f"{latency.tpot(seq_len, m, cache_hit_rate=0.6):9.4f}" for m in methods
        )
        print(f"  {seq_len:>8,}  {row}")

    print("\nGPU cache effect on PQCache TPOT at 128K context:")
    for hit_rate in (0.0, 0.3, 0.6):
        tpot = latency.tpot(131_072, "pqcache", cache_hit_rate=hit_rate)
        print(f"  hit rate {hit_rate:.1f}: {tpot:.4f}s/token")

    print("\nHuman reading speed is roughly 0.18s/token; PQCache stays below it")
    print("while SPARQ's query-dependent fetch grows with the context length.")


if __name__ == "__main__":
    main()
