#!/usr/bin/env python
"""Quickstart: PQCache-managed generation on a long synthetic prompt.

This example runs the full pipeline on a small model:

1. build the NumPy transformer substrate,
2. generate tokens with full attention and with PQCache selective attention,
3. compare what fraction of the KVCache each decode step actually touched and
   how much memory the PQ structures use compared to the raw key/value pairs.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import PQCachePolicy, SelectionBudget
from repro.core import PQCacheConfig
from repro.llm import ModelConfig, TransformerLM, greedy_generate
from repro.utils import sizeof_fmt


def main() -> None:
    config = ModelConfig.tiny()
    model = TransformerLM(config, seed=0)

    rng = np.random.default_rng(0)
    prompt = rng.integers(4, config.vocab_size, size=1024).tolist()
    print(f"model: {config.name} ({config.num_layers} layers, "
          f"{config.num_kv_heads} KV heads), prompt length {len(prompt)}")

    # Full attention reference.
    full = greedy_generate(model, prompt, max_new_tokens=8)
    print(f"full attention generated:    {full.token_ids}")

    # PQCache: keep 1/5 of the tokens, PQ with m=2 partitions and 6-bit codes.
    budget = SelectionBudget(token_ratio=0.2, comm_ratio=1 / 128,
                             num_initial=4, num_local=32)
    policy = PQCachePolicy(budget, pq_config=PQCacheConfig(num_partitions=2,
                                                           num_bits=6,
                                                           max_kmeans_iters=15))
    pqcache = greedy_generate(model, prompt, max_new_tokens=8, policy=policy)
    print(f"PQCache (1/5 tokens) output: {pqcache.token_ids}")

    # How many tokens did each decode step attend to?
    step = pqcache.selections[0]
    attended = np.mean([
        np.mean([len(per_head) for per_head in layer_selection])
        for layer_selection in step
    ])
    print(f"tokens attended per decode step: {attended:.0f} / {len(prompt)} "
          f"({100 * attended / len(prompt):.1f}%)")

    # Memory accounting: PQ codes + centroids vs the raw KVCache.
    footprint = policy.manager.memory_footprint(len(prompt))
    print("PQ structures on GPU/CPU:")
    print(f"  PQ codes:      {sizeof_fmt(footprint['codes_bytes'])}")
    print(f"  PQ centroids:  {sizeof_fmt(footprint['centroid_bytes'])}")
    print(f"  raw KVCache:   {sizeof_fmt(footprint['raw_kv_bytes'])}")
    print(f"  compression:   {footprint['compression_ratio']:.1f}x")

    # Communication per decode step (what would cross PCIe in a deployment).
    comm = policy.step_communication_bytes(len(prompt))
    print(f"per-step communication: {sizeof_fmt(comm['overlappable'])} overlappable "
          f"(PQ codes, prefetched) + {sizeof_fmt(comm['blocking'])} blocking "
          f"(top-k key/values)")


if __name__ == "__main__":
    main()
