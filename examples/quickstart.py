#!/usr/bin/env python
"""Quickstart: PQCache-managed generation through the serving engine.

This example runs the full pipeline on a small model:

1. build the NumPy transformer substrate and an ``InferenceEngine`` over it,
2. serve one request with full attention and one with PQCache selective
   attention, streaming tokens as they are generated,
3. compare what fraction of the KVCache each decode step actually touched,
   how much memory the PQ structures use compared to the raw key/value
   pairs, and what the request's serving metrics (TTFT / TPOT on the
   simulated paper-testbed clock) look like.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import PQCachePolicy, SelectionBudget
from repro.core import PQCacheConfig
from repro.llm import ModelConfig, TransformerLM
from repro.serve import InferenceEngine, PolicySpec, Request, SamplingParams
from repro.utils import sizeof_fmt


def main() -> None:
    config = ModelConfig.tiny()
    model = TransformerLM(config, seed=0)
    engine = InferenceEngine(model)

    rng = np.random.default_rng(0)
    prompt = rng.integers(4, config.vocab_size, size=1024).tolist()
    print(f"model: {config.name} ({config.num_layers} layers, "
          f"{config.num_kv_heads} KV heads), prompt length {len(prompt)}")

    # Full attention reference (no policy spec).
    full = Request(prompt_ids=prompt, sampling=SamplingParams(max_new_tokens=8))

    # PQCache: keep 1/5 of the tokens, PQ with m=2 partitions and 6-bit codes.
    # Built as an instance (instead of PolicySpec.named) so we can inspect
    # the exact PQ structures that served the request afterwards.
    budget = SelectionBudget(token_ratio=0.2, comm_ratio=1 / 128,
                             num_initial=4, num_local=32)
    pq_config = PQCacheConfig(num_partitions=2, num_bits=6, max_kmeans_iters=15)
    policy = PQCachePolicy(budget, pq_config=pq_config)
    pqcache = Request(
        prompt_ids=prompt,
        sampling=SamplingParams(max_new_tokens=8),
        policy_spec=PolicySpec.from_instance(policy),
    )

    engine.submit(full)
    engine.submit(pqcache)
    print("streaming tokens as the engine steps:")
    for output in engine.stream():
        if output.new_token_ids:
            print(f"  {output.request_id}: +{output.new_token_ids}")

    full_out = engine.final_output(full.request_id)
    pqc_out = engine.final_output(pqcache.request_id)
    print(f"full attention generated:    {full_out.token_ids}")
    print(f"PQCache (1/5 tokens) output: {pqc_out.token_ids}")

    # How many tokens did each decode step attend to?
    attended = pqc_out.metrics.mean_attended_tokens
    print(f"tokens attended per decode step: {attended:.0f} / {len(prompt)} "
          f"({100 * attended / len(prompt):.1f}%)")

    # Serving metrics on the simulated paper-testbed clock.
    metrics = pqc_out.metrics
    print(f"simulated TTFT: {1e3 * metrics.ttft:.1f} ms, "
          f"TPOT: {1e3 * metrics.tpot:.2f} ms/token")
    print(f"per-step communication: "
          f"{sizeof_fmt(metrics.comm_overlappable_bytes / metrics.decode_steps)} "
          f"overlappable (PQ codes, prefetched) + "
          f"{sizeof_fmt(metrics.comm_blocking_bytes / metrics.decode_steps)} "
          f"blocking (top-k key/values)")

    # Memory accounting: the PQ structures that actually served the request
    # vs the raw key/value pairs.
    footprint = policy.manager.memory_footprint(len(prompt))
    print("PQ structures on GPU/CPU:")
    print(f"  PQ codes:      {sizeof_fmt(footprint['codes_bytes'])}")
    print(f"  PQ centroids:  {sizeof_fmt(footprint['centroid_bytes'])}")
    print(f"  raw KVCache:   {sizeof_fmt(footprint['raw_kv_bytes'])}")
    print(f"  compression:   {footprint['compression_ratio']:.1f}x")


if __name__ == "__main__":
    main()
