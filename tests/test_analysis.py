"""Tests for the KVCache cost model and the §3.2 complexity accounting."""

import pytest

from repro.analysis import ComplexityModel, KVCacheCostModel
from repro.core import PQCacheConfig
from repro.llm import ModelConfig
from repro.memory import InterconnectSpec


@pytest.fixture(scope="module")
def cost_model():
    return KVCacheCostModel(ModelConfig.llama3_8b(), InterconnectSpec.pcie5_x16())


class TestKVCacheCostModel:
    def test_memory_grows_linearly(self, cost_model):
        assert cost_model.kvcache_gib(128 * 1024) == pytest.approx(
            2 * cost_model.kvcache_gib(64 * 1024)
        )

    def test_figure1_batch128_exceeds_8xa100(self):
        """Figure 1: a 7B MHA model at 128K and batch 128 needs ~1 TB, beyond
        the 640 GB of an 8xA100 node."""
        mha_7b = ModelConfig(num_layers=32, hidden_dim=4096, num_heads=32,
                             num_kv_heads=32, ffn_dim=11008)
        model = KVCacheCostModel(mha_7b, InterconnectSpec.pcie5_x16())
        assert model.kvcache_gib(128 * 1024, batch_size=128) > 640

    def test_13b_larger_than_8b(self, cost_model):
        bigger = KVCacheCostModel(ModelConfig.llama2_13b(), InterconnectSpec.pcie5_x16())
        assert bigger.kvcache_gib(32 * 1024) > cost_model.kvcache_gib(32 * 1024)

    def test_transfer_time_scales_with_bytes(self, cost_model):
        assert cost_model.transfer_seconds(64 * 1024) > cost_model.transfer_seconds(8 * 1024)

    def test_fits_in_gpu(self, cost_model):
        assert cost_model.fits_in_gpu(8 * 1024, 1, gpu_memory_gib=24.0)
        assert not cost_model.fits_in_gpu(128 * 1024, 32, gpu_memory_gib=24.0)

    def test_sweep_rows(self, cost_model):
        rows = cost_model.sweep(seq_lens=(1024, 2048), batch_sizes=(1, 8))
        assert len(rows) == 4
        assert {"kvcache_gib", "transfer_seconds", "seq_len", "batch_size"} <= set(rows[0])


class TestComplexityModel:
    @pytest.fixture(scope="class")
    def complexity(self):
        return ComplexityModel(ModelConfig.llama3_8b(),
                               PQCacheConfig(num_partitions=2, num_bits=6))

    def test_prefill_quadratic(self, complexity):
        assert complexity.prefill_attention_ops(2048) > 2 * complexity.prefill_attention_ops(1024)

    def test_kmeans_linear_in_sequence(self, complexity):
        assert complexity.kmeans_ops(2048, 10) == pytest.approx(
            2 * complexity.kmeans_ops(1024, 10)
        )

    def test_pq_sequence_multiplier_small(self, complexity):
        """§3.2: the decode-time sequence multiplier h_kv*m is far smaller
        than the dense multiplier d (8*2 vs 4096 for the 8B model)."""
        assert complexity.seq_multiplier_ratio() < 0.01

    def test_pq_decode_cheaper_than_dense_for_long_contexts(self, complexity):
        seq_len = 128 * 1024
        dense = complexity.decode_original_ops(seq_len)
        pq = complexity.decode_pq_ops(seq_len, k=seq_len // 5)
        assert pq < dense

    def test_pq_memory_linear(self, complexity):
        assert complexity.pq_memory_elements(2 * 65536) < 2.1 * complexity.pq_memory_elements(65536)
