"""KV block codec property tests.

Lossless codecs must be bitwise-invertible on arbitrary blocks — including
adversarial fp16 images (denormals, constant planes, palette-sized value
sets); lossy codecs must restore within their declared per-element error
bound and encode deterministically (same block, same bytes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.llm.kvcodec import (
    CODEC_NAMES,
    BytePlaneCodec,
    EncodedKV,
    Int4OutlierCodec,
    IntQuantCodec,
    KVBlockCodec,
    RawCodec,
    byteplane_pack,
    byteplane_unpack,
    get_codec,
)

BLOCK_SHAPE = (2, 16, 8)  # (h_kv, tokens, d_h) — token axis is -2


def random_block(seed=0, shape=BLOCK_SHAPE, scale=1.0):
    rng = np.random.default_rng(seed)
    return rng.normal(scale=scale, size=shape)


def adversarial_blocks():
    """fp16-edge inputs: denormals, constants, tiny palettes, huge runs."""
    rng = np.random.default_rng(7)
    tiny = np.float64(np.finfo(np.float16).tiny)  # smallest fp16 normal
    yield "zeros", np.zeros(BLOCK_SHAPE)
    yield "constant", np.full(BLOCK_SHAPE, -3.25)
    yield "denormals", rng.uniform(-tiny / 2, tiny / 2, size=BLOCK_SHAPE)
    yield "palette", rng.choice([-1.0, 0.0, 0.5, 2.0], size=BLOCK_SHAPE)
    yield "runs", np.repeat(
        np.arange(8, dtype=np.float64), np.prod(BLOCK_SHAPE) // 8
    ).reshape(BLOCK_SHAPE)
    yield "fp16-extremes", rng.choice(
        [65504.0, -65504.0, 6.1e-5, -6.1e-5, 0.0], size=BLOCK_SHAPE
    )
    yield "mixed-scale", rng.normal(size=BLOCK_SHAPE) * np.logspace(
        -4, 4, BLOCK_SHAPE[-1]
    )


# ----------------------------------------------------------- byteplane pack


class TestBytePlanePack:
    @pytest.mark.parametrize("dtype", [np.float16, np.float32, np.float64])
    def test_random_images_invert_bitwise(self, dtype):
        for seed in range(5):
            image = random_block(seed).astype(dtype)
            blob = byteplane_pack(image)
            back = byteplane_unpack(blob, image.shape, dtype)
            assert back.dtype == image.dtype
            assert np.array_equal(
                back.view(np.uint8), image.view(np.uint8)
            ), f"seed {seed}"

    def test_adversarial_images_invert_bitwise(self):
        for label, block in adversarial_blocks():
            image = block.astype(np.float16)
            back = byteplane_unpack(
                byteplane_pack(image), image.shape, np.float16
            )
            assert np.array_equal(
                back.view(np.uint8), image.view(np.uint8)
            ), label

    def test_compressible_planes_beat_raw(self):
        image = np.zeros(BLOCK_SHAPE, dtype=np.float16)
        assert len(byteplane_pack(image)) < image.nbytes

    def test_incompressible_worst_case_is_header_only(self):
        # Random mantissa bytes stay raw: overhead is the 5-byte per-plane
        # record header, never more.
        image = random_block(3).astype(np.float16)
        assert len(byteplane_pack(image)) <= image.nbytes + 5 * 2

    def test_long_runs_split_at_255(self):
        # A single 1000-element run exercises the 255-run splitting path.
        image = np.zeros(1000, dtype=np.float16).reshape(10, 100)
        back = byteplane_unpack(byteplane_pack(image), image.shape, np.float16)
        assert np.array_equal(back, image)

    def test_corrupt_blob_raises(self):
        blob = byteplane_pack(np.zeros((2, 2), dtype=np.float16))
        with pytest.raises(ConfigurationError):
            byteplane_unpack(blob, (3, 3), np.float16)  # wrong shape


# ------------------------------------------------------------ lossless codecs


class TestLosslessCodecs:
    @pytest.mark.parametrize("codec_cls", [RawCodec, BytePlaneCodec])
    def test_random_blocks_restore_bitwise(self, codec_cls):
        codec = codec_cls()
        for seed in range(5):
            block = random_block(seed, scale=10.0 ** (seed - 2))
            encoded = codec.encode(block)
            assert encoded.error_bound is None
            assert encoded.logical_nbytes == block.size * 2
            restored = encoded.decode()
            assert np.array_equal(restored, block), f"seed {seed}"

    @pytest.mark.parametrize("codec_cls", [RawCodec, BytePlaneCodec])
    def test_adversarial_blocks_restore_bitwise(self, codec_cls):
        codec = codec_cls()
        for label, block in adversarial_blocks():
            assert np.array_equal(codec.encode(block).decode(), block), label

    def test_raw_wire_equals_logical(self):
        block = random_block()
        encoded = RawCodec().encode(block)
        assert encoded.wire_nbytes == encoded.logical_nbytes

    def test_byteplane_wire_measured_on_fp16_image(self):
        block = random_block()
        encoded = BytePlaneCodec().encode(block)
        assert encoded.wire_nbytes == len(
            byteplane_pack(block.astype(np.float16))
        )
        # Sign/exponent structure packs; zeros pack dramatically.
        sparse = BytePlaneCodec().encode(np.zeros(BLOCK_SHAPE))
        assert sparse.wire_nbytes < sparse.logical_nbytes // 4

    def test_restore_unaffected_by_source_mutation(self):
        # The parked payload must be a copy: scribbling over the source
        # block after encode (the pool recycles it) cannot corrupt restore.
        block = random_block()
        original = block.copy()
        for codec in (RawCodec(), BytePlaneCodec()):
            encoded = codec.encode(block)
            block[...] = -1.0
            assert np.array_equal(encoded.decode(), original)
            block[...] = original

    def test_byteplane_rejects_one_byte_elements(self):
        with pytest.raises(ConfigurationError):
            BytePlaneCodec(dtype_bytes=1)


# --------------------------------------------------------------- lossy codecs


def lossy_codecs():
    return [
        IntQuantCodec(8),
        IntQuantCodec(4),
        Int4OutlierCodec(),
    ]


def payload_bytes(encoded: EncodedKV) -> bytes:
    """Canonical byte string of a lossy payload (for determinism checks)."""
    return b"".join(np.ascontiguousarray(p).tobytes() for p in encoded.payload)


class TestLossyCodecs:
    @pytest.mark.parametrize("codec", lossy_codecs(), ids=lambda c: c.name)
    def test_error_within_declared_bound(self, codec):
        for seed in range(5):
            block = random_block(seed, scale=10.0 ** (seed - 2))
            encoded = codec.encode(block)
            assert encoded.error_bound is not None
            err = np.max(np.abs(encoded.decode() - block))
            assert err <= encoded.error_bound, f"{codec.name} seed {seed}"

    @pytest.mark.parametrize("codec", lossy_codecs(), ids=lambda c: c.name)
    def test_adversarial_blocks_within_bound(self, codec):
        for label, block in adversarial_blocks():
            encoded = codec.encode(block)
            err = np.max(np.abs(encoded.decode() - block))
            assert err <= encoded.error_bound, f"{codec.name} {label}"

    @pytest.mark.parametrize("codec", lossy_codecs(), ids=lambda c: c.name)
    def test_encode_is_deterministic(self, codec):
        block = random_block(11)
        a, b = codec.encode(block), codec.encode(block.copy())
        assert payload_bytes(a) == payload_bytes(b)
        assert a.wire_nbytes == b.wire_nbytes
        assert a.error_bound == b.error_bound

    @pytest.mark.parametrize("codec", lossy_codecs(), ids=lambda c: c.name)
    def test_decode_of_decode_is_stable(self, codec):
        # Quantising an already-quantised block is idempotent: every value
        # already sits on a representable level.
        block = random_block(13)
        once = codec.encode(block).decode()
        twice = codec.encode(once).decode()
        assert np.allclose(once, twice, atol=1e-6)

    def test_compression_ratios_ordered(self):
        block = random_block(17, shape=(2, 64, 32))
        logical = block.size * 2
        int8 = IntQuantCodec(8).encode(block).wire_nbytes
        int4 = IntQuantCodec(4).encode(block).wire_nbytes
        outlier = Int4OutlierCodec().encode(block).wire_nbytes
        assert int4 < int8 < logical
        assert int4 < outlier < int8  # outliers cost, but less than int8

    def test_constant_channels_do_not_divide_by_zero(self):
        block = np.full(BLOCK_SHAPE, 2.5)
        for codec in lossy_codecs():
            encoded = codec.encode(block)
            assert np.max(np.abs(encoded.decode() - block)) <= encoded.error_bound

    def test_outliers_restore_exactly(self):
        block = random_block(19)
        flat = block.reshape(-1)
        spike_idx = [3, 100, 200]
        flat[spike_idx] = [1e4, -2e4, 3e4]
        encoded = Int4OutlierCodec().encode(block)
        restored = encoded.decode().reshape(-1)
        assert np.array_equal(restored[spike_idx], flat[spike_idx])
        # The spikes must not blow up the bound for everyone else.
        plain_bound = IntQuantCodec(4).encode(block).error_bound
        assert encoded.error_bound < plain_bound

    def test_quantisation_needs_token_axis(self):
        for codec in lossy_codecs():
            with pytest.raises(ConfigurationError):
                codec.encode(np.zeros(8))

    def test_invalid_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            IntQuantCodec(3)
        with pytest.raises(ConfigurationError):
            Int4OutlierCodec(outlier_fraction=0.0)


# ------------------------------------------------------------------ registry


class TestCodecRegistry:
    def test_all_names_resolve(self):
        for name in CODEC_NAMES:
            codec = get_codec(name, dtype_bytes=2)
            assert codec.name == name
            assert codec.dtype_bytes == 2

    def test_none_is_raw(self):
        assert isinstance(get_codec(None), RawCodec)

    def test_instance_passes_through(self):
        codec = IntQuantCodec(8, dtype_bytes=4)
        assert get_codec(codec, dtype_bytes=2) is codec

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            get_codec("gzip")

    def test_dtype_bytes_validated(self):
        with pytest.raises(ConfigurationError):
            RawCodec(dtype_bytes=3)

    def test_cross_codec_decode_rejected(self):
        encoded = RawCodec().encode(random_block())
        with pytest.raises(ConfigurationError):
            BytePlaneCodec().decode(encoded)

    def test_flops_scale_with_logical_bytes(self):
        raw, bp = RawCodec(), BytePlaneCodec()
        assert raw.encode_flops(1e6) == 0.0 and raw.decode_flops(1e6) == 0.0
        assert bp.encode_flops(1e6) == pytest.approx(6e6)
        assert bp.decode_flops(2e6) == pytest.approx(6e6)
        assert IntQuantCodec(4).encode_flops(1.0) < Int4OutlierCodec().encode_flops(1.0)

    def test_describe(self):
        info = Int4OutlierCodec().describe()
        assert info["name"] == "int4-outlier"
        assert info["lossless"] is False
        assert info["dtype_bytes"] == 2

    def test_logical_nbytes_uses_modelled_width(self):
        block = random_block()
        assert RawCodec(dtype_bytes=4).logical_nbytes(block) == block.size * 4
        assert isinstance(KVBlockCodec(), KVBlockCodec)  # base constructs
