"""Preemption under KV-pool pressure: directed scenarios + a randomized
scheduler fuzz harness.

The fuzz harness drives 200+ seeded random schedules — mixed policies,
shared prefixes, mid-run submissions and aborts, teacher-forced requests,
chunked and monolithic prefill, pool sizes down to a few blocks, swap and
recompute preemption — and asserts after every engine step:

* **refcounts balanced**: every pool block's refcount equals exactly the
  number of live holders (request block tables, retained outputs, resident
  prefix-cache nodes) — no leaked and no double-freed block, ever;
* **tier coherence**: every block parked in the swap space belongs to either
  a swapped request's handle or a spilled prefix-cache node;
* **no deadlock**: the schedule finishes within a generous step budget
  (some request always progresses);
* **byte-identity**: every finished request's tokens *and* per-step logits
  are bitwise equal to the same request served by an uncontended
  (unbounded-pool) engine, under both preemption modes;
* **QoS order**: requests carry random priority/tenant tags; the waiting
  queue stays priority-sorted, and the engine's victim log shows no
  cross-class priority inversion (a victim never outranks its claimant) and
  the age rule holding within each class;
* **deadline discipline**: ~40% of tagged requests carry random deadlines;
  within each class the waiting queue keeps deadline-tagged items in EDF
  order ahead of the untagged FCFS tail, every ``finish_reason="deadline"``
  shed was genuinely past-deadline (or provably unmeetable) at shed time,
  and every request that *does* finish remains byte-identical to the
  deadline-free uncontended reference.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.baselines import SelectionBudget, build_policy
from repro.core.pqcache import PQCacheConfig
from repro.errors import CapacityError
from repro.llm import ModelConfig, TransformerLM
from repro.llm.kvcache import PagedKVCache
from repro.serve import (
    InferenceEngine,
    PolicySpec,
    Request,
    RequestQoS,
    SamplingParams,
    SchedulerConfig,
)

SEEDS_PER_CASE = 25
FUZZ_CASES = 8  # 8 x 25 = 200 seeds

#: small PQ geometry so k-means on 20-token prompts stays meaningful & fast
PQ_CONFIG = PQCacheConfig(
    num_partitions=2, num_bits=2, max_kmeans_iters=4,
    gpu_cache_tokens=64, gpu_cache_block=8,
)


@pytest.fixture(scope="module")
def fuzz_model():
    config = ModelConfig(
        num_layers=2, hidden_dim=32, num_heads=4, num_kv_heads=2,
        ffn_dim=64, vocab_size=128, name="preempt-fuzz",
    )
    return TransformerLM(config, seed=7)


def _budget():
    return SelectionBudget(token_ratio=0.3, num_initial=2, num_local=8)


def _policy_spec(name):
    if name is None:
        return None
    if name == "pqcache":
        return PolicySpec.named("pqcache", _budget(), pq_config=PQ_CONFIG,
                                sketch_tokens=16)
    return PolicySpec.named(name, _budget())


def _make_engine(model, pool_blocks, mode, chunk, block_size=8,
                 swap_codec="byteplane", spill_codec=None,
                 proactive=None, shed_deadlines=True, batch=4):
    return InferenceEngine(
        model,
        scheduler_config=SchedulerConfig(
            max_batch_size=batch,
            max_prefill_chunk_tokens=chunk,
            preemption_mode=mode,
            proactive_swap_free_fraction=proactive,
            shed_missed_deadlines=shed_deadlines,
        ),
        enable_prefix_caching=True,
        kv_block_size=block_size,
        kv_pool_blocks=pool_blocks,
        max_retained_outputs=0,
        kv_swap_codec=swap_codec,
        kv_spill_codec=spill_codec,
    )


# ----------------------------------------------------------------- audits


def audit_engine(engine, context=""):
    """Assert block/tier bookkeeping is exactly balanced."""
    alloc = engine.block_allocator
    expected: Counter = Counter()
    handle_blocks = 0
    for state in engine._states.values():
        if state.paged is not None and not state.paged.table.released:
            for block_id in state.paged.table.block_ids:
                expected[block_id] += 1
        if state.swap_handle is not None:
            # Stored positions park bytes in the swap tiers; pinned positions
            # hold one extra reference on a GPU-resident shared block.
            handle_blocks += state.swap_handle.stored_blocks
            for pinned in state.swap_handle.pinned_ids:
                if pinned is not None:
                    expected[pinned] += 1
    for output in engine._final_outputs.values():
        kvcache = output.prefill.kvcache if output.prefill is not None else None
        if isinstance(kvcache, PagedKVCache) and not kvcache.released:
            for block_id in kvcache.table.block_ids:
                expected[block_id] += 1
    for node in engine.prefix_cache._nodes.values():
        if not node.spilled:
            expected[node.block_id] += 1
    assert dict(expected) == alloc._refcounts, (
        f"{context}: refcount imbalance — expected {dict(expected)}, "
        f"allocator holds {alloc._refcounts}"
    )
    if alloc.capacity_blocks is not None:
        assert alloc.num_allocated <= alloc.capacity_blocks, context
    space = engine.swap_space
    parked = space.cpu_blocks + space.disk_blocks
    spilled = engine.prefix_cache.num_spilled
    assert parked == handle_blocks + spilled, (
        f"{context}: swap space holds {parked} blocks but requests park "
        f"{handle_blocks} and the prefix cache spilled {spilled}"
    )
    # QoS admission order: the waiting queue is always priority-sorted
    # (descending); within a class, deadline-tagged items run EDF (ascending
    # absolute deadline) ahead of the untagged FCFS tail.
    ranks = [
        (
            -s.priority,
            0 if s.deadline_time is not None else 1,
            s.deadline_time if s.deadline_time is not None else 0.0,
        )
        for s in engine.scheduler.waiting_items()
    ]
    assert ranks == sorted(ranks), (
        f"{context}: waiting queue out of priority/EDF order: {ranks}"
    )


def audit_victim_log(log, context=""):
    """No cross-class inversion; the age rule holds within each class."""
    for cp, cs, vp, vs in log:
        assert vp <= cp, (
            f"{context}: priority inversion — claimant class {cp} (seq {cs}) "
            f"preempted class {vp} (seq {vs})"
        )
        if vp == cp:
            assert vs > cs, (
                f"{context}: within-class age rule broken — claimant seq "
                f"{cs} preempted same-class seq {vs}"
            )


def _outputs_equal(out, ref):
    assert out.token_ids == ref.token_ids
    assert out.finish_reason == ref.finish_reason
    if ref.logits is None:
        assert out.logits is None
    else:
        assert np.array_equal(out.logits, ref.logits)


# ------------------------------------------------------------ fuzz harness


def _random_qos(rng):
    """Random priority/tenant tags; ~30% of requests stay untagged; ~40% of
    tagged requests carry a deadline drawn log-uniform over 1ns–10ms —
    straddling the simulated clock's feasible/hopeless boundary (fuzz
    schedules finish in ~1ms of simulated time, and a queued step costs
    only nanoseconds) so the seeds mix met, missed, and unmeetable
    deadlines."""
    if rng.random() < 0.3:
        return RequestQoS()
    deadline = None
    if rng.random() < 0.4:
        deadline = float(10.0 ** rng.uniform(-9.0, -2.0))
    return RequestQoS(
        priority=int(rng.integers(0, 3)),
        tenant=["default", "alpha", "beta"][int(rng.integers(0, 3))],
        weight=[1.0, 2.0][int(rng.integers(0, 2))],
        deadline=deadline,
    )


def _random_requests(model, rng):
    """3-6 requests: mixed policies, shared prefixes, forced decodes."""
    vocab = model.config.vocab_size
    shared_pool = rng.integers(4, vocab, size=48).tolist()
    requests = []
    for index in range(int(rng.integers(3, 7))):
        plen = int(rng.integers(20, 90))
        if rng.random() < 0.4:
            shared = min(int(rng.integers(8, 41)), plen - 1)
            prompt = shared_pool[:shared] + rng.integers(
                4, vocab, size=plen - shared
            ).tolist()
        else:
            prompt = rng.integers(4, vocab, size=plen).tolist()
        policy_name = [None, "pqcache", "snapkv"][int(rng.integers(0, 3))]
        forced = None
        max_new = int(rng.integers(2, 7))
        if rng.random() < 0.15:
            forced = rng.integers(4, vocab, size=int(rng.integers(2, 6))).tolist()
        requests.append(
            Request(
                prompt_ids=prompt,
                request_id=f"fuzz-{index}",
                sampling=SamplingParams(max_new_tokens=max_new,
                                        observation_window=8),
                policy_spec=_policy_spec(policy_name),
                forced_decode_ids=forced,
                qos=_random_qos(rng),
            )
        )
    return requests


def _min_pool_blocks(request, block_size):
    """Blocks the request needs resident at once (prompt + decode + COW)."""
    decoded = (
        len(request.forced_decode_ids)
        if request.forced_decode_ids is not None
        else request.sampling.max_new_tokens
    )
    tokens = len(request.prompt_ids) + decoded + 1
    return -(-tokens // block_size) + 1


def run_fuzz_seed(model, seed):
    rng = np.random.default_rng(seed)
    block_size = 8
    requests = _random_requests(model, rng)
    mode = "swap" if rng.random() < 0.5 else "recompute"
    chunk = [None, 24, 40][int(rng.integers(0, 3))]
    # Randomly toggle the lossless codec configs: byte-identity must hold
    # whichever combination the downward tiers compress with.
    swap_codec = ["raw", "byteplane"][int(rng.integers(0, 2))]
    spill_codec = [None, "raw", "byteplane"][int(rng.integers(0, 3))]
    # Randomly arm proactive swap-out: another ordering-only knob that must
    # never move the bytes.
    proactive = [None, 0.5][int(rng.integers(0, 2))]
    # Random batch ceiling: small batches force real queuing, which is what
    # exercises the mid-wait deadline sweep and the EDF waiting order.
    batch = int(rng.integers(2, 5))
    floor = max(_min_pool_blocks(r, block_size) for r in requests)
    pool = floor + int(rng.integers(0, 6))
    context = (
        f"seed={seed} mode={mode} chunk={chunk} pool={pool} batch={batch} "
        f"codec={swap_codec}/{spill_codec} proactive={proactive}"
    )

    # Uncontended ground truth: same engine configuration, unbounded pool.
    # Deadline shedding is OFF here — the reference serves every request to
    # completion so byte-identity can be checked for whatever the contended
    # engine finishes (deadlines steer scheduling, never bytes).
    reference = _make_engine(model, None, mode, chunk, block_size,
                             shed_deadlines=False, batch=batch)
    refs = reference.run(list(requests))

    engine = _make_engine(model, pool, mode, chunk, block_size,
                          swap_codec=swap_codec, spill_codec=spill_codec,
                          proactive=proactive, batch=batch)
    engine.victim_log = []
    # Stagger submissions and plan a few aborts at random step indices.
    submit_at = {0: requests[:2]}
    for request in requests[2:]:
        submit_at.setdefault(int(rng.integers(0, 12)), []).append(request)
    abort_at = {}
    for request in requests:
        if rng.random() < 0.15:
            abort_at[int(rng.integers(1, 20))] = request.request_id

    finals = {}
    aborted = set()
    step_cap = 400 + 100 * len(requests)
    for step_index in range(step_cap):
        for request in submit_at.pop(step_index, []):
            engine.submit(request)
        rid = abort_at.get(step_index)
        if rid is not None and rid in engine._states:
            engine.abort(rid)
            aborted.add(rid)
            audit_engine(engine, f"{context} abort@{step_index}")
        for output in engine.step():
            if output.finished:
                finals[output.request_id] = output
        audit_engine(engine, f"{context} step={step_index}")
        audit_victim_log(engine.victim_log, f"{context} step={step_index}")
        if not submit_at and not engine.has_unfinished:
            break
    else:
        pytest.fail(f"{context}: engine made no progress within {step_cap} steps")

    for request in requests:
        rid = request.request_id
        if rid in aborted:
            continue
        assert rid in finals, f"{context}: request {rid} never finished"
        out = finals[rid]
        if out.finish_reason == "deadline":
            # A deadline shed must be genuine: either the clock had already
            # passed the absolute deadline when the request was dropped, or
            # admission control proved the deadline unmeetable from the
            # TTFT lower bound alone.
            assert request.qos.deadline is not None, (
                f"{context}: {rid} shed for a deadline it never had"
            )
            missed = out.metrics.finish_time > out.metrics.deadline
            infeasible = (
                engine.min_ttft_lower_bound(len(request.prompt_ids))
                > request.qos.deadline
            )
            assert missed or infeasible, (
                f"{context}: {rid} shed at clock {out.metrics.finish_time} "
                f"before its deadline {out.metrics.deadline}"
            )
            continue
        _outputs_equal(out, refs[rid])
    return engine


@pytest.mark.parametrize("case", range(FUZZ_CASES))
def test_randomized_scheduler_fuzz(fuzz_model, case):
    for seed in range(case * SEEDS_PER_CASE, (case + 1) * SEEDS_PER_CASE):
        run_fuzz_seed(fuzz_model, seed)


# -------------------------------------------------------- directed scenarios


def _long_request(rid, rng, plen, policy=None, max_new=5):
    return Request(
        prompt_ids=rng.integers(4, 128, size=plen).tolist(),
        request_id=rid,
        sampling=SamplingParams(max_new_tokens=max_new, observation_window=8),
        policy_spec=policy,
    )


class TestDirectedPreemption:
    def test_swap_preemption_bytes_visible_and_identical(self, fuzz_model):
        """Half-working-set pool: everything completes, swap bytes surface."""
        rng = np.random.default_rng(1)
        requests = [
            _long_request(f"s{i}", rng, 100, _policy_spec(p))
            for i, p in enumerate([None, "pqcache", None, "snapkv"])
        ]
        refs = _make_engine(fuzz_model, None, "swap", 32).run(list(requests))
        # Working set: 4 requests x ~14 blocks; give roughly half.
        engine = _make_engine(fuzz_model, 28, "swap", 32)
        finals = engine.run(list(requests))
        for request in requests:
            _outputs_equal(finals[request.request_id], refs[request.request_id])
        metrics = engine.metrics
        assert metrics.preemptions > 0
        assert metrics.preemptions_swap > 0
        assert metrics.swap_out_bytes > 0 and metrics.swap_in_bytes > 0
        assert metrics.swap_out_blocks >= metrics.swap_in_blocks > 0
        assert metrics.swap_seconds > 0
        assert metrics.as_dict()["swap_out_bytes"] == metrics.swap_out_bytes
        audit_engine(engine, "swap directed")

    def test_recompute_preemption_replays_identically(self, fuzz_model):
        rng = np.random.default_rng(2)
        requests = [
            _long_request(f"r{i}", rng, 100, _policy_spec(p))
            for i, p in enumerate([None, "pqcache", "snapkv", None])
        ]
        refs = _make_engine(fuzz_model, None, "recompute", 32).run(list(requests))
        engine = _make_engine(fuzz_model, 28, "recompute", 32)
        finals = engine.run(list(requests))
        for request in requests:
            _outputs_equal(finals[request.request_id], refs[request.request_id])
        metrics = engine.metrics
        assert metrics.preemptions_recompute > 0
        assert metrics.swap_out_blocks == 0  # pure recompute, no swap traffic
        per_request = [finals[r.request_id].metrics for r in requests]
        assert sum(m.recomputed_tokens for m in per_request) > 0
        audit_engine(engine, "recompute directed")

    def test_single_request_exceeding_pool_raises_cleanly(self, fuzz_model):
        rng = np.random.default_rng(3)
        engine = _make_engine(fuzz_model, 4, "swap", 32)
        engine.submit(_long_request("big", rng, 120))
        with pytest.raises(CapacityError):
            engine.run()
        # The engine is still serviceable: abort the stuck request and a
        # small one completes normally.
        engine.abort("big")
        audit_engine(engine, "post-capacity-error")
        small = _long_request("small", rng, 20, max_new=2)
        finals = engine.run([small])
        assert finals["small"].finished
        audit_engine(engine, "post-recovery")

    def test_instance_policy_falls_back_to_swap_in_recompute_mode(
        self, fuzz_model
    ):
        """A victim whose policy cannot be rebuilt is swapped, not dropped."""
        rng = np.random.default_rng(4)
        instance = build_policy("pqcache", _budget(), pq_config=PQ_CONFIG)
        young = _long_request(
            "young", rng, 90, PolicySpec.from_instance(instance)
        )
        old = _long_request("old", rng, 100)
        reference = _make_engine(fuzz_model, None, "recompute", 32)
        instance_ref = build_policy("pqcache", _budget(), pq_config=PQ_CONFIG)
        refs = reference.run([
            Request(
                prompt_ids=list(old.prompt_ids),
                request_id="old",
                sampling=old.sampling,
            ),
            Request(
                prompt_ids=list(young.prompt_ids),
                request_id="young",
                sampling=young.sampling,
                policy_spec=PolicySpec.from_instance(instance_ref),
            ),
        ])
        engine = _make_engine(fuzz_model, 16, "recompute", 32)
        finals = engine.run([old, young])
        assert engine.metrics.preemptions > 0
        assert engine.metrics.preemptions_swap > 0  # the fallback fired
        _outputs_equal(finals["young"], refs["young"])
        _outputs_equal(finals["old"], refs["old"])

    def test_abort_of_swapped_request_releases_everything(self, fuzz_model):
        rng = np.random.default_rng(5)
        old = _long_request("old", rng, 100)
        young = _long_request("young", rng, 90)
        engine = _make_engine(fuzz_model, 16, "swap", 32)
        engine.submit(old)
        engine.submit(young)
        swapped = None
        for _ in range(300):
            engine.step()
            swapped = next(
                (s for s in engine._states.values()
                 if s.swap_handle is not None), None,
            )
            if swapped is not None:
                break
            if not engine.has_unfinished:
                break
        assert swapped is not None, "pressure never forced a swap"
        engine.abort(swapped.request.request_id)
        audit_engine(engine, "post-abort-swapped")
        assert engine.swap_space.cpu_blocks + engine.swap_space.disk_blocks \
            == engine.prefix_cache.num_spilled
        engine.run()  # the survivor drains normally
        audit_engine(engine, "post-drain")

    def test_default_retention_never_wedges_a_bounded_pool(self, fuzz_model):
        """Regression: retained finished outputs must not pin the pool.

        With the default ``max_retained_outputs=None`` every finished
        output keeps its block references; once cumulative finished work
        exceeded the pool, new requests used to die with CapacityError.
        The escalation now releases retained outputs' pool references
        (oldest first) while keeping the outputs readable.
        """
        rng = np.random.default_rng(8)
        engine = InferenceEngine(
            fuzz_model,
            scheduler_config=SchedulerConfig(max_prefill_chunk_tokens=24),
            enable_prefix_caching=True,
            kv_block_size=8,
            kv_pool_blocks=10,
        )
        prompts = [rng.integers(4, 128, size=30).tolist() for _ in range(4)]
        for index, prompt in enumerate(prompts):
            finals = engine.run([Request(
                prompt_ids=prompt,
                request_id=f"keep-{index}",
                sampling=SamplingParams(max_new_tokens=4, observation_window=8),
            )])
            assert finals[f"keep-{index}"].finished
        # Every retained output is still readable after reclamation.
        for index in range(4):
            output = engine.final_output(f"keep-{index}")
            assert output.logits is not None and len(output.token_ids) > 0
            assert output.prefill.kvcache.seq_len >= 30

    def test_full_swap_tiers_fall_back_to_recompute(self, fuzz_model):
        """Regression: a swap-out the tiers cannot absorb must not crash.

        With a 1-block CPU tier and no disk tier, every chain swap-out
        fails; rebuildable victims must fall back to recompute-preemption
        and the schedule must still complete byte-identically.
        """
        rng = np.random.default_rng(9)
        requests = [_long_request(f"t{i}", rng, 90) for i in range(3)]
        refs = _make_engine(fuzz_model, None, "swap", 32).run(list(requests))
        engine = InferenceEngine(
            fuzz_model,
            scheduler_config=SchedulerConfig(
                max_prefill_chunk_tokens=32, preemption_mode="swap",
            ),
            enable_prefix_caching=True,
            kv_block_size=8,
            kv_pool_blocks=16,
            max_retained_outputs=0,
            swap_cpu_blocks=1,
            swap_disk_blocks=0,
        )
        finals = engine.run(list(requests))
        for request in requests:
            _outputs_equal(finals[request.request_id], refs[request.request_id])
        assert engine.metrics.preemptions_recompute > 0  # the fallback fired
        audit_engine(engine, "swap-tier fallback")

    def test_pinned_shared_prefixes_cannot_wedge_tiny_swap_tiers(
        self, fuzz_model
    ):
        """Regression: swapped requests' pins must yield under pressure.

        Requests sharing a long prefix swap out with most blocks *pinned*
        (shared with the prefix cache).  With next-to-no swap-tier room the
        pins can neither stay (they stuff the pool) nor materialise (no
        room) — the escalation must degrade parked swapped requests to
        recompute instead of raising CapacityError, and everything must
        still finish byte-identically.
        """
        rng = np.random.default_rng(10)
        shared = rng.integers(4, 128, size=64).tolist()
        requests = [
            Request(
                prompt_ids=shared + rng.integers(4, 128, size=40).tolist(),
                request_id=f"pin-{i}",
                sampling=SamplingParams(max_new_tokens=5, observation_window=8),
            )
            for i in range(3)
        ]
        refs = _make_engine(fuzz_model, None, "swap", 32).run(list(requests))
        engine = InferenceEngine(
            fuzz_model,
            scheduler_config=SchedulerConfig(
                max_prefill_chunk_tokens=32, preemption_mode="swap",
            ),
            enable_prefix_caching=True,
            kv_block_size=8,
            kv_pool_blocks=18,
            max_retained_outputs=0,
            swap_cpu_blocks=2,
            swap_disk_blocks=2,
        )
        finals = engine.run(list(requests))
        for request in requests:
            _outputs_equal(finals[request.request_id], refs[request.request_id])
        assert engine.metrics.preemptions > 0
        audit_engine(engine, "pinned tiny tiers")

    def test_repeated_evict_reinsert_cycles_keep_holds_bounded(self, fuzz_model):
        """Engine-level regression for the snapshot hold-ref leak."""
        rng = np.random.default_rng(6)
        prompt = rng.integers(4, 128, size=80).tolist()
        filler = [rng.integers(4, 128, size=80).tolist() for _ in range(3)]
        engine = _make_engine(fuzz_model, 16, "swap", 32)
        for cycle in range(4):
            requests = [
                Request(
                    prompt_ids=list(prompt),
                    request_id=f"warm-{cycle}",
                    sampling=SamplingParams(max_new_tokens=2,
                                            observation_window=8),
                    policy_spec=_policy_spec("pqcache"),
                ),
                Request(
                    prompt_ids=list(filler[cycle % 3]),
                    request_id=f"cold-{cycle}",
                    sampling=SamplingParams(max_new_tokens=2,
                                            observation_window=8),
                    policy_spec=_policy_spec("pqcache"),
                ),
            ]
            engine.run(requests)
            audit_engine(engine, f"cycle {cycle}")
        # Every stored snapshot's holds are bounded by the nodes that can
        # hold it — the pre-fix leak grew holds by one per evict/re-insert.
        nodes = list(engine.prefix_cache._nodes.values())
        snapshots = {
            id(s): s for node in nodes for s in node.pq_snapshots.values()
        }
        for snap in snapshots.values():
            holders = sum(
                1 for node in nodes if snap in node.pq_snapshots.values()
            )
            assert snap.hold_count == holders


# --------------------------------------------------------- codec config


class TestCodecToggles:
    """Codec configs on the preemption path (see also the fuzz harness,
    which toggles lossless swap/spill codecs randomly per seed)."""

    def _swap_heavy(self, rng):
        return [
            _long_request(f"c{i}", rng, 100, _policy_spec(p))
            for i, p in enumerate([None, "pqcache", None, "snapkv"])
        ]

    def test_lossy_swap_codec_rejected(self, fuzz_model):
        from repro.errors import ConfigurationError

        for name in ("int8", "int4", "int4-outlier"):
            with pytest.raises(ConfigurationError):
                _make_engine(fuzz_model, 28, "swap", 32, swap_codec=name)

    def test_raw_and_byteplane_runs_are_identical(self, fuzz_model):
        """Same schedule, raw vs byteplane: same tokens, same logits, same
        logical counters — only the wire bytes move."""
        finals, metrics = {}, {}
        for codec in ("raw", "byteplane"):
            rng = np.random.default_rng(21)
            engine = _make_engine(fuzz_model, 28, "swap", 32,
                                  swap_codec=codec, spill_codec=codec)
            finals[codec] = engine.run(self._swap_heavy(rng))
            metrics[codec] = engine.metrics
            audit_engine(engine, f"codec={codec}")
        raw, packed = metrics["raw"], metrics["byteplane"]
        assert raw.preemptions_swap > 0 and packed.preemptions_swap > 0
        for rid in finals["raw"]:
            _outputs_equal(finals["byteplane"][rid], finals["raw"][rid])
        # Logical accounting is codec-invariant...
        assert packed.swap_out_bytes == raw.swap_out_bytes > 0
        assert packed.swap_in_bytes == raw.swap_in_bytes > 0
        assert packed.swap_out_blocks == raw.swap_out_blocks
        # ...while the wire diverges: raw bills identity, byteplane bills
        # the measured packed size and pays CPU codec time for it.
        assert raw.swap_out_wire_bytes == raw.swap_out_bytes
        assert packed.swap_out_wire_bytes != packed.swap_out_bytes
        assert packed.swap_out_wire_bytes > 0
        assert raw.codec_encode_seconds == 0.0
        assert packed.codec_encode_seconds > 0.0
        assert packed.codec_decode_seconds > 0.0

    def test_wire_metrics_surface_in_as_dict(self, fuzz_model):
        rng = np.random.default_rng(22)
        engine = _make_engine(fuzz_model, 28, "swap", 32)
        engine.run(self._swap_heavy(rng))
        report = engine.metrics.as_dict()
        assert report["swap_out_wire_bytes"] == engine.metrics.swap_out_wire_bytes
        assert report["swap_compression_ratio"] > 0.0
        assert report["codec_encode_seconds"] >= 0.0

    def test_lossy_spill_codec_keeps_engine_coherent(self, fuzz_model):
        """int4 on the spill tier: audits hold, requests finish, the spill
        wire bytes shrink below logical.  (No byte-identity claim — lossy
        restores are only bound-accurate, which the codec tests cover.)"""
        rng = np.random.default_rng(23)
        engine = _make_engine(fuzz_model, 24, "swap", 32, spill_codec="int4")
        requests = self._swap_heavy(rng)
        finals = engine.run(list(requests))
        audit_engine(engine, "lossy spill")
        assert all(f.finished for f in finals.values())
        metrics = engine.metrics
        if metrics.spill_out_bytes > 0:
            assert metrics.spill_out_wire_bytes < metrics.spill_out_bytes
