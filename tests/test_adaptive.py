"""Tests for the adaptive K-Means iteration planner (paper Eq. 1-3)."""

import numpy as np
import pytest

from repro.core.adaptive import (
    AdaptiveIterationPlanner,
    ClusteringProfile,
    ComputeProfile,
)
from repro.errors import ConfigurationError, NotFittedError


def _make_planner(alpha1=0.001, beta1=1e-7, alpha2=0.002, beta2=1e-6, gamma2=1e-9,
                  min_iterations=1, max_iterations=100):
    """Planner fitted on synthetic observations generated from known curves."""
    planner = AdaptiveIterationPlanner(min_iterations=min_iterations,
                                       max_iterations=max_iterations)
    clus = [
        ClusteringProfile(s, t, alpha1 + beta1 * s * t)
        for s in (1024, 4096, 16384)
        for t in (1, 10, 30)
    ]
    comp = [
        ComputeProfile(s, alpha2 + beta2 * s + gamma2 * s * s)
        for s in (512, 1024, 4096, 16384, 65536)
    ]
    planner.fit_clustering(clus)
    planner.fit_compute(comp)
    return planner


class TestFitting:
    def test_recovers_clustering_coefficients(self):
        planner = _make_planner()
        alpha1, beta1 = planner.clustering_coefficients
        assert alpha1 == pytest.approx(0.001, rel=1e-3, abs=1e-6)
        assert beta1 == pytest.approx(1e-7, rel=1e-3)

    def test_recovers_compute_coefficients(self):
        planner = _make_planner()
        alpha2, beta2, gamma2 = planner.compute_coefficients
        assert beta2 == pytest.approx(1e-6, rel=1e-2)
        assert gamma2 == pytest.approx(1e-9, rel=1e-2)

    def test_requires_enough_profiles(self):
        planner = AdaptiveIterationPlanner()
        with pytest.raises(ConfigurationError):
            planner.fit_clustering([ClusteringProfile(1024, 5, 0.1)])
        with pytest.raises(ConfigurationError):
            planner.fit_compute([ComputeProfile(1024, 0.1), ComputeProfile(2048, 0.2)])

    def test_unfitted_access_raises(self):
        planner = AdaptiveIterationPlanner()
        with pytest.raises(NotFittedError):
            planner.predict_clustering_time(1024, 5)
        with pytest.raises(NotFittedError):
            planner.max_iterations_for(1024)

    def test_invalid_clip_range(self):
        with pytest.raises(ConfigurationError):
            AdaptiveIterationPlanner(min_iterations=10, max_iterations=5)
        with pytest.raises(ConfigurationError):
            AdaptiveIterationPlanner(min_iterations=-1)


class TestBudget:
    def test_budget_satisfies_overlap_constraint(self):
        planner = _make_planner()
        for seq_len in (2048, 8192, 32768):
            t_max = planner.max_iterations_for(seq_len)
            if t_max < planner.max_iterations:
                clustering = planner.predict_clustering_time(seq_len, t_max)
                compute = planner.predict_compute_time(seq_len)
                assert clustering <= compute * 1.01

    def test_budget_grows_with_sequence_length(self):
        # Compute grows quadratically while clustering grows linearly, so the
        # iteration budget must be non-decreasing in s (Figure 8 argument).
        planner = _make_planner(max_iterations=10_000)
        budgets = [planner.max_iterations_for(s) for s in (1024, 4096, 16384, 65536)]
        assert budgets == sorted(budgets)

    def test_clipping_applied(self):
        planner = _make_planner(min_iterations=5, max_iterations=8)
        assert 5 <= planner.max_iterations_for(128) <= 8
        assert 5 <= planner.max_iterations_for(1 << 20) <= 8

    def test_invalid_seq_len(self):
        planner = _make_planner()
        with pytest.raises(ConfigurationError):
            planner.max_iterations_for(0)


class TestFromDeviceModel:
    def test_builds_and_predicts(self):
        planner = AdaptiveIterationPlanner.from_device_model(
            compute_seconds_fn=lambda s: 1e-6 * s + 1e-10 * s * s,
            clustering_seconds_per_point=2e-8,
        )
        budget = planner.max_iterations_for(16384)
        assert planner.min_iterations <= budget <= planner.max_iterations

    def test_short_prompts_get_fewer_iterations(self):
        planner = AdaptiveIterationPlanner.from_device_model(
            compute_seconds_fn=lambda s: 1e-7 * s + 5e-11 * s * s,
            clustering_seconds_per_point=1e-8,
            max_iterations=1000,
        )
        assert planner.max_iterations_for(1024) <= planner.max_iterations_for(65536)
