"""Fused decode round vs per-request loop: byte-identity fuzz.

The fused decode round (``InferenceEngine(decode_batching=True)``, the
default) is a pure execution-plan refactor: one
:meth:`~repro.llm.TransformerLM.decode_step_batch` round over all RUNNING
requests must be *byte-identical* to looping
:meth:`~repro.llm.TransformerLM.decode_step` per request — tokens, logits,
selections, selection-hook observations, per-request metrics, and the
engine's simulated clock and counters.

Three layers of assertion:

* a directed property test of the load-bearing numerical contract — within
  the fixed-shape :data:`~repro.llm.DECODE_ROW_BLOCK` dense operands, a
  row's projection is bitwise independent of its offset in the block and of
  the other rows' contents (zero padding or other requests' live rows);
* a randomized engine fuzz — mixed policies, shared prefixes, forced
  decodes, chunked and monolithic prefill, staggered ``max_new_tokens``
  (members finish mid-round), mid-run submissions and aborts, and bounded
  KV pools (swap and recompute preemption — parking members mid-batch and
  recompute-replay on resume, with the fused round falling back to the loop
  whenever its reservations might need the pressure ladder);
* a cluster fuzz — the same traffic through a multi-worker
  :class:`~repro.serve.cluster.ClusterFrontend` with fused and looped
  workers.

Host wall-clock stage timings and the fused-round shape counters
(``decode_batch_*``, ``decode_*_seconds``) are the *only* metrics allowed
to differ between the two modes; everything else is compared exactly.
"""

from __future__ import annotations

from dataclasses import fields

import numpy as np
import pytest

from repro.baselines import SelectionBudget
from repro.core.pqcache import PQCacheConfig
from repro.llm import DECODE_ROW_BLOCK, ModelConfig, TransformerLM
from repro.llm.layers import Linear
from repro.serve import (
    InferenceEngine,
    PolicySpec,
    Request,
    SamplingParams,
    SchedulerConfig,
)
from repro.serve.cluster import ClusterFrontend

PQ_CONFIG = PQCacheConfig(
    num_partitions=2, num_bits=2, max_kmeans_iters=4,
    gpu_cache_tokens=64, gpu_cache_block=8,
)

POLICY_NAMES = [None, "pqcache", "snapkv", "h2o", "streaming-llm", "sparq"]


@pytest.fixture(scope="module")
def fuzz_model():
    config = ModelConfig(
        num_layers=2, hidden_dim=32, num_heads=4, num_kv_heads=2,
        ffn_dim=64, vocab_size=128, name="decode-batch-fuzz",
    )
    return TransformerLM(config, seed=11)


def _policy_spec(name):
    if name is None:
        return None
    budget = SelectionBudget(token_ratio=0.3, num_initial=2, num_local=8)
    if name == "pqcache":
        return PolicySpec.named("pqcache", budget, pq_config=PQ_CONFIG,
                                sketch_tokens=16)
    return PolicySpec.named(name, budget)


# ------------------------------------------------ the numerical contract


def test_decode_row_block_is_offset_and_content_independent():
    """The dense-op contract the fused round is built on.

    Within a fixed ``(DECODE_ROW_BLOCK, d)`` operand, each row's ``matmul``
    result must be bitwise independent of (a) the row's offset inside the
    block and (b) what the other rows contain — zero padding (the
    per-request loop) or other requests' hidden states (the fused round).
    """
    rng = np.random.default_rng(0)
    for d_in, d_out in [(32, 64), (64, 128), (64, 32), (48, 96)]:
        proj = Linear.init(d_in, d_out, rng)
        row = rng.normal(size=d_in)
        alone = np.zeros((DECODE_ROW_BLOCK, d_in))
        alone[0] = row
        reference = proj(alone)[0]
        for offset in range(DECODE_ROW_BLOCK):
            packed = rng.normal(size=(DECODE_ROW_BLOCK, d_in))
            packed[offset] = row
            assert np.array_equal(proj(packed)[offset], reference), (
                f"({d_in},{d_out}) row at offset {offset} diverged"
            )


# ------------------------------------------------------ comparison helpers

#: host wall-clock / fused-round-shape fields — legitimately differ between
#: modes (the looped path never populates them); everything else must match
#: exactly, including the simulated ``clock``.
_MODE_DEPENDENT_METRICS = {
    "decode_batch_rounds", "decode_batch_requests",
    "decode_batch_size_1", "decode_batch_size_2_4", "decode_batch_size_5_8",
    "decode_batch_size_9_16", "decode_batch_size_17_plus",
    "decode_select_seconds", "decode_score_seconds", "decode_topk_seconds",
    "decode_gather_seconds", "decode_attention_seconds",
    "decode_maintenance_seconds",
}


def _assert_engine_metrics_equal(fused, looped, context):
    for spec in fields(fused):
        if spec.name in _MODE_DEPENDENT_METRICS:
            continue
        f, l = getattr(fused, spec.name), getattr(looped, spec.name)
        assert f == l, f"{context}: metrics.{spec.name} {f} != {l}"


def _assert_selections_equal(fused, looped, context):
    if looped is None or fused is None:
        assert fused is None and looped is None, context
        return
    assert len(fused) == len(looped), context
    for step, (f_step, l_step) in enumerate(zip(fused, looped)):
        assert len(f_step) == len(l_step), f"{context} step={step}"
        for f_sel, l_sel in zip(f_step, l_step):
            if l_sel is None:
                assert f_sel is None, f"{context} step={step}"
                continue
            assert len(f_sel) == len(l_sel), f"{context} step={step}"
            for f_head, l_head in zip(f_sel, l_sel):
                assert np.array_equal(f_head, l_head), f"{context} step={step}"


def _assert_outputs_equal(fused, looped, context):
    assert fused.token_ids == looped.token_ids, context
    assert fused.finish_reason == looped.finish_reason, context
    if looped.logits is None:
        assert fused.logits is None, context
    else:
        assert np.array_equal(fused.logits, looped.logits), context
    _assert_selections_equal(fused.selections, looped.selections, context)
    for spec in fields(fused.metrics):
        f = getattr(fused.metrics, spec.name)
        l = getattr(looped.metrics, spec.name)
        assert f == l, f"{context}: request metrics.{spec.name} {f} != {l}"


# -------------------------------------------------------------- the fuzz


def _random_requests(model, rng, hook_log):
    """4-7 requests: mixed policies, shared prefixes, forced decodes, hooks."""
    vocab = model.config.vocab_size
    shared_pool = rng.integers(4, vocab, size=48).tolist()
    requests = []
    for index in range(int(rng.integers(4, 8))):
        plen = int(rng.integers(24, 90))
        if rng.random() < 0.4:
            shared = min(int(rng.integers(8, 41)), plen - 1)
            prompt = shared_pool[:shared] + rng.integers(
                4, vocab, size=plen - shared
            ).tolist()
        else:
            prompt = rng.integers(4, vocab, size=plen).tolist()
        name = POLICY_NAMES[int(rng.integers(0, len(POLICY_NAMES)))]
        forced = None
        if rng.random() < 0.2:
            forced = rng.integers(4, vocab, size=int(rng.integers(2, 6))).tolist()
        hook = None
        if name is not None and rng.random() < 0.3:
            rid = f"fuzz-{index}"
            log = hook_log.setdefault(rid, [])

            def hook(layer_index, query, kvcache, normalised, _log=log):
                _log.append((layer_index, query.copy()))

        requests.append(
            Request(
                prompt_ids=prompt,
                request_id=f"fuzz-{index}",
                # Staggered budgets: members finish mid-batch on different
                # rounds, shrinking the fused batch as the schedule drains.
                sampling=SamplingParams(max_new_tokens=int(rng.integers(2, 9)),
                                        observation_window=8),
                policy_spec=_policy_spec(name),
                forced_decode_ids=forced,
                selection_hook=hook,
            )
        )
    return requests


def _min_pool_blocks(request, block_size):
    decoded = (
        len(request.forced_decode_ids)
        if request.forced_decode_ids is not None
        else request.sampling.max_new_tokens
    )
    tokens = len(request.prompt_ids) + decoded + 1
    return -(-tokens // block_size) + 1


def _drive(model, requests, plan, decode_batching, hook_log):
    """Run one engine over the seeded submit/abort schedule."""
    # The hook closures append to the lists inside ``hook_log``; both modes
    # share them, so slice off this run's entries by pre-run length.
    marks = {rid: len(log) for rid, log in hook_log.items()}
    engine = InferenceEngine(
        model,
        scheduler_config=SchedulerConfig(
            max_batch_size=plan["max_batch_size"],
            max_prefill_chunk_tokens=plan["chunk"],
            preemption_mode=plan["mode"],
        ),
        enable_prefix_caching=True,
        kv_block_size=plan["block_size"],
        kv_pool_blocks=plan["pool"],
        max_retained_outputs=0,
        decode_batching=decode_batching,
    )
    finals = {}
    step_cap = 400 + 100 * len(requests)
    submit_at = dict(plan["submit_at"])
    for step_index in range(step_cap):
        for request in submit_at.pop(step_index, []):
            engine.submit(request)
        rid = plan["abort_at"].get(step_index)
        if rid is not None and rid in engine._states:
            engine.abort(rid)
        for output in engine.step():
            if output.finished:
                finals[output.request_id] = output
        if not submit_at and not engine.has_unfinished:
            break
    else:
        pytest.fail("engine made no progress within the step budget")
    return finals, engine.metrics.snapshot(), {
        rid: list(log[marks[rid]:]) for rid, log in hook_log.items()
    }


def _run_fuzz_seed(model, seed):
    rng = np.random.default_rng(seed)
    hook_log: dict = {}
    requests = _random_requests(model, rng, hook_log)
    block_size = 8
    pool = None
    mode = "swap" if rng.random() < 0.5 else "recompute"
    if rng.random() < 0.5:
        # Bounded pool: preemption parking (and recompute-replay on resume)
        # happens mid-schedule, and the fused round must fall back to the
        # loop whenever reservations might need the pressure ladder.
        floor = max(_min_pool_blocks(r, block_size) for r in requests)
        pool = floor + int(rng.integers(0, 6))
    plan = {
        "max_batch_size": int(rng.integers(3, 7)),
        "chunk": [None, 24, 40][int(rng.integers(0, 3))],
        "mode": mode,
        "block_size": block_size,
        "pool": pool,
        "submit_at": {},
        "abort_at": {},
    }
    plan["submit_at"][0] = requests[:2]
    for request in requests[2:]:
        plan["submit_at"].setdefault(int(rng.integers(0, 12)), []).append(request)
    for request in requests:
        if rng.random() < 0.15:
            plan["abort_at"][int(rng.integers(1, 20))] = request.request_id
    context = f"seed={seed} mode={mode} pool={pool} chunk={plan['chunk']}"

    fused_finals, fused_metrics, fused_hooks = _drive(
        model, requests, plan, True, hook_log
    )
    looped_finals, looped_metrics, looped_hooks = _drive(
        model, requests, plan, False, hook_log
    )

    assert fused_finals.keys() == looped_finals.keys(), context
    for rid in fused_finals:
        _assert_outputs_equal(
            fused_finals[rid], looped_finals[rid], f"{context} rid={rid}"
        )
    assert fused_hooks.keys() == looped_hooks.keys(), context
    for rid in fused_hooks:
        f_log, l_log = fused_hooks[rid], looped_hooks[rid]
        assert len(f_log) == len(l_log), f"{context} rid={rid} hook calls"
        for (f_layer, f_query), (l_layer, l_query) in zip(f_log, l_log):
            assert f_layer == l_layer, f"{context} rid={rid}"
            assert np.array_equal(f_query, l_query), f"{context} rid={rid}"
    _assert_engine_metrics_equal(fused_metrics, looped_metrics, context)


@pytest.mark.parametrize("case", range(4))
def test_fused_vs_looped_randomized_fuzz(fuzz_model, case):
    for seed in range(case * 8, (case + 1) * 8):
        _run_fuzz_seed(fuzz_model, seed)


# ------------------------------------------------------------ cluster fuzz


def _run_cluster(model, requests, decode_batching, swap_codec="byteplane"):
    cluster = ClusterFrontend(
        model,
        num_workers=3,
        placement="cache_aware",
        scheduler_config=SchedulerConfig(max_prefill_chunk_tokens=32),
        decode_batching=decode_batching,
        kv_swap_codec=swap_codec,
        kv_spill_codec=swap_codec,
    )
    for request in requests:
        cluster.submit(request)
    finals = cluster.run()
    return finals, cluster.fleet_metrics()


def test_cluster_fused_vs_looped_byte_identity(fuzz_model):
    """Same traffic over a 3-worker fleet, fused vs looped workers.

    Alternates the lossless swap/spill codec per seed: batching mode and
    codec config may only move wire bytes and clocks, never tokens."""
    for seed in (0, 1, 2):
        rng = np.random.default_rng(1000 + seed)
        requests = _random_requests(fuzz_model, rng, {})
        swap_codec = ["raw", "byteplane"][seed % 2]
        fused_finals, fused_fleet = _run_cluster(
            fuzz_model, requests, decode_batching=True, swap_codec=swap_codec
        )
        looped_finals, looped_fleet = _run_cluster(
            fuzz_model, requests, decode_batching=False, swap_codec=swap_codec
        )
        context = f"cluster seed={seed}"
        assert fused_finals.keys() == looped_finals.keys(), context
        for rid in fused_finals:
            _assert_outputs_equal(
                fused_finals[rid], looped_finals[rid], f"{context} rid={rid}"
            )
        _assert_engine_metrics_equal(fused_fleet, looped_fleet, context)
        assert fused_fleet.decode_batch_rounds > 0, context
