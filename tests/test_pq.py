"""Tests for the Product Quantizer (codebooks, encoding, ADC scoring)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pq import PQConfig, ProductQuantizer
from repro.errors import ConfigurationError, DimensionError, NotFittedError


@pytest.fixture()
def keys(rng):
    return rng.normal(size=(256, 32))


@pytest.fixture()
def fitted(keys):
    pq = ProductQuantizer(PQConfig(dim=32, num_partitions=2, num_bits=4, seed=0))
    codes = pq.fit(keys)
    return pq, codes


class TestPQConfig:
    def test_derived_quantities(self):
        cfg = PQConfig(dim=128, num_partitions=2, num_bits=6)
        assert cfg.num_centroids == 64
        assert cfg.sub_dim == 64
        assert cfg.code_bytes_per_vector() == pytest.approx(2 * 6 / 8)

    def test_centroid_bytes(self):
        cfg = PQConfig(dim=64, num_partitions=4, num_bits=4)
        assert cfg.centroid_bytes(dtype_bytes=2) == 4 * 16 * 16 * 2

    def test_dim_must_divide(self):
        with pytest.raises(ConfigurationError):
            PQConfig(dim=30, num_partitions=4)

    def test_invalid_bits(self):
        with pytest.raises(ConfigurationError):
            PQConfig(dim=32, num_bits=0)
        with pytest.raises(ConfigurationError):
            PQConfig(dim=32, num_bits=20)

    def test_invalid_dim(self):
        with pytest.raises(ConfigurationError):
            PQConfig(dim=0)

    def test_paper_communication_ratios(self):
        # LongBench setting: m=2, b=6, d_h=128 -> (m*b/8)/(2*d_h) = 12/2048 < 1/128
        longbench = PQConfig(dim=128, num_partitions=2, num_bits=6)
        ratio = longbench.code_bytes_per_vector() / (2 * 128)
        assert ratio <= 1 / 128
        # InfiniteBench setting: m=4, b=8 -> 1/64
        infinitebench = PQConfig(dim=128, num_partitions=4, num_bits=8)
        ratio = infinitebench.code_bytes_per_vector() / (2 * 128)
        assert ratio == pytest.approx(1 / 64)


class TestFitEncode:
    def test_codes_shape_and_range(self, fitted, keys):
        pq, codes = fitted
        assert codes.shape == (keys.shape[0], 2)
        assert codes.dtype == np.uint16
        assert codes.max() < 16

    def test_not_fitted_errors(self):
        pq = ProductQuantizer(PQConfig(dim=8, num_partitions=2, num_bits=2))
        with pytest.raises(NotFittedError):
            pq.encode(np.zeros((1, 8)))
        with pytest.raises(NotFittedError):
            _ = pq.centroids

    def test_encode_matches_fit_codes(self, fitted, keys):
        pq, codes = fitted
        re_encoded = pq.encode(keys)
        assert np.array_equal(re_encoded, codes)

    def test_decode_shape(self, fitted, keys):
        pq, codes = fitted
        approx = pq.decode(codes)
        assert approx.shape == keys.shape

    def test_reconstruction_better_than_zero_baseline(self, fitted, keys):
        pq, _ = fitted
        mse = pq.reconstruction_error(keys)
        baseline = float(np.mean(keys ** 2))
        assert mse < baseline

    def test_more_bits_reduce_reconstruction_error(self, keys):
        coarse = ProductQuantizer(PQConfig(dim=32, num_partitions=2, num_bits=2, seed=0))
        fine = ProductQuantizer(PQConfig(dim=32, num_partitions=2, num_bits=6, seed=0))
        coarse.fit(keys)
        fine.fit(keys)
        assert fine.reconstruction_error(keys) < coarse.reconstruction_error(keys)

    def test_wrong_dim_rejected(self, fitted):
        pq, _ = fitted
        with pytest.raises(DimensionError):
            pq.encode(np.zeros((3, 16)))

    def test_max_iters_zero_still_produces_codes(self, keys):
        pq = ProductQuantizer(PQConfig(dim=32, num_partitions=2, num_bits=4, seed=0))
        codes = pq.fit(keys, max_iters=0)
        assert codes.shape == (keys.shape[0], 2)


class TestScoring:
    def test_lookup_table_shape(self, fitted, rng):
        pq, _ = fitted
        table = pq.lookup_table(rng.normal(size=32))
        assert table.shape == (2, 16)

    def test_score_equals_table_gather(self, fitted, rng):
        pq, codes = fitted
        query = rng.normal(size=32)
        table = pq.lookup_table(query)
        scores = pq.score(query, codes)
        manual = table[0, codes[:, 0].astype(int)] + table[1, codes[:, 1].astype(int)]
        assert np.allclose(scores, manual)

    def test_score_equals_inner_product_with_reconstruction(self, fitted, keys, rng):
        pq, codes = fitted
        query = rng.normal(size=32)
        scores = pq.score(query, codes)
        recon = pq.decode(codes)
        assert np.allclose(scores, recon @ query)

    def test_score_correlates_with_exact(self, fitted, keys, rng):
        pq, codes = fitted
        query = rng.normal(size=32)
        exact = keys @ query
        approx = pq.score(query, codes)
        corr = np.corrcoef(exact, approx)[0, 1]
        # Random Gaussian keys are the hardest case for PQ; a coarse 2x4-bit
        # quantizer still has to preserve a clearly positive correlation.
        assert corr > 0.3

    def test_topk_recall_reasonable(self, keys, rng):
        pq = ProductQuantizer(PQConfig(dim=32, num_partitions=4, num_bits=6, seed=0))
        codes = pq.fit(keys)
        query = rng.normal(size=32)
        exact_top = set(np.argsort(-(keys @ query))[:20].tolist())
        approx_top = set(np.argsort(-pq.score(query, codes))[:20].tolist())
        recall = len(exact_top & approx_top) / 20
        assert recall >= 0.4

    def test_query_dim_validated(self, fitted):
        pq, codes = fitted
        with pytest.raises(DimensionError):
            pq.score(np.zeros(16), codes)

    def test_codes_shape_validated(self, fitted, rng):
        pq, _ = fitted
        with pytest.raises(DimensionError):
            pq.score(rng.normal(size=32), np.zeros((5, 3), dtype=np.int64))


class TestMemoryFootprint:
    def test_codes_smaller_than_raw(self, fitted):
        pq, _ = fitted
        footprint = pq.memory_footprint(num_vectors=1000)
        assert footprint["codes_bytes"] < footprint["raw_bytes"]

    @given(st.integers(1, 4), st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_code_bytes_formula(self, partitions, bits):
        dim = 32
        if dim % partitions:
            partitions = 1
        cfg = PQConfig(dim=dim, num_partitions=partitions, num_bits=bits)
        assert cfg.code_bytes_per_vector() == pytest.approx(partitions * bits / 8)


class TestPropertyBased:
    @given(st.integers(1, 3).map(lambda m: 2 ** m), st.integers(2, 5))
    @settings(max_examples=10, deadline=None)
    def test_fit_score_roundtrip_any_config(self, partitions, bits):
        rng = np.random.default_rng(partitions * 10 + bits)
        keys = rng.normal(size=(96, 16))
        pq = ProductQuantizer(
            PQConfig(dim=16, num_partitions=partitions, num_bits=bits, seed=0)
        )
        codes = pq.fit(keys)
        scores = pq.score(rng.normal(size=16), codes)
        assert scores.shape == (96,)
        assert np.isfinite(scores).all()
