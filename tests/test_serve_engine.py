"""Tests for the request-centric serving engine (repro.serve).

The central contract: continuous batching must be *transparent* — a batched
engine run produces byte-identical tokens to sequential single-request runs
for every registered policy, because each request owns its KVCache and policy
instance while the stateless substrate is shared.
"""

import numpy as np
import pytest

from repro.baselines import POLICY_NAMES, SelectionBudget, build_policy
from repro.core import PQCacheConfig
from repro.errors import ConfigurationError
from repro.llm import StepSelections, greedy_generate
from repro.memory import resolve_method
from repro.serve import (
    ContinuousBatchingScheduler,
    InferenceEngine,
    PolicySpec,
    Request,
    RequestStatus,
    SamplingParams,
    SchedulerConfig,
)

BUDGET = SelectionBudget(token_ratio=0.2, comm_ratio=1.0 / 64.0,
                         num_initial=4, num_local=16)

#: heterogeneous prompt lengths used throughout (all long enough for every
#: policy's init/local segments plus a non-trivial middle section).
PROMPT_LENS = (120, 152, 184)


def make_prompts(tiny_config, lengths, seed=9):
    rng = np.random.default_rng(seed)
    return [rng.integers(4, tiny_config.vocab_size, size=n).tolist()
            for n in lengths]


class TestEngineLegacyEquivalence:
    @pytest.mark.parametrize("policy_name", POLICY_NAMES)
    def test_batched_engine_matches_sequential_greedy(
        self, model, tiny_config, policy_name
    ):
        """3 concurrent requests == 3 sequential greedy_generate calls,
        byte-identical tokens, for every registered policy."""
        prompts = make_prompts(tiny_config, PROMPT_LENS)
        sequential = [
            greedy_generate(model, prompt, max_new_tokens=3,
                            policy=build_policy(policy_name, BUDGET))
            for prompt in prompts
        ]

        engine = InferenceEngine(model)
        requests = [
            Request(prompt_ids=prompt,
                    sampling=SamplingParams(max_new_tokens=3),
                    policy_spec=PolicySpec.named(policy_name, BUDGET))
            for prompt in prompts
        ]
        outputs = engine.run(requests)

        for request, reference in zip(requests, sequential):
            out = outputs[request.request_id]
            assert out.token_ids == reference.token_ids
            assert out.finish_reason == "length"
            assert np.array_equal(out.logits, reference.logits)

    def test_no_policy_matches_legacy_full_attention(self, model, tiny_config):
        prompt = make_prompts(tiny_config, (100,))[0]
        reference = greedy_generate(model, prompt, max_new_tokens=4)
        engine = InferenceEngine(model)
        request = Request(prompt_ids=prompt,
                          sampling=SamplingParams(max_new_tokens=4))
        out = engine.run([request])[request.request_id]
        assert out.token_ids == reference.token_ids
        assert np.array_equal(out.logits, reference.logits)


class TestConcurrentServing:
    def test_eight_concurrent_heterogeneous_requests(self, model, tiny_config):
        """≥8 concurrent requests with mixed prompt lengths, per-request
        policies and per-request token budgets all finish correctly, with
        tokens streamed incrementally."""
        lengths = (96, 112, 128, 144, 160, 176, 192, 208)
        prompts = make_prompts(tiny_config, lengths, seed=13)
        policies = ("pqcache", "snapkv", "full", "h2o",
                    "sparq", "infllm", "streaming-llm", "oracle")
        budgets = (2, 3, 4, 2, 3, 4, 2, 3)

        engine = InferenceEngine(
            model, scheduler_config=SchedulerConfig(max_batch_size=4,
                                                    max_prefills_per_step=2)
        )
        requests = [
            Request(prompt_ids=prompt,
                    sampling=SamplingParams(max_new_tokens=max_new),
                    policy_spec=PolicySpec.named(name, BUDGET))
            for prompt, name, max_new in zip(prompts, policies, budgets)
        ]
        for request in requests:
            engine.submit(request)
        assert engine.num_waiting == 8

        streamed: dict[str, list[int]] = {r.request_id: [] for r in requests}
        incremental_steps = 0
        while engine.has_unfinished:
            assert engine.num_running <= 4
            outputs = engine.step()
            for out in outputs:
                streamed[out.request_id].extend(out.new_token_ids)
                if out.new_token_ids and not out.finished:
                    incremental_steps += 1

        # Tokens arrived incrementally, not only with the final output.
        assert incremental_steps > 0
        for request, max_new in zip(requests, budgets):
            final = engine.final_output(request.request_id)
            assert final.finished and final.finish_reason == "length"
            assert len(final.token_ids) == max_new
            # The streamed deltas reassemble the full output exactly.
            assert streamed[request.request_id] == final.token_ids
        assert engine.metrics.requests_finished == 8
        assert engine.metrics.clock > 0.0

    def test_batch_slots_are_refilled_continuously(self, model, tiny_config):
        """A short request finishing frees its slot for a waiting request
        before the long batch-mates drain (continuous batching)."""
        prompts = make_prompts(tiny_config, (96, 96, 96), seed=3)
        engine = InferenceEngine(
            model, scheduler_config=SchedulerConfig(max_batch_size=2,
                                                    max_prefills_per_step=2)
        )
        short = Request(prompt_ids=prompts[0],
                        sampling=SamplingParams(max_new_tokens=1))
        long = Request(prompt_ids=prompts[1],
                       sampling=SamplingParams(max_new_tokens=6))
        late = Request(prompt_ids=prompts[2],
                       sampling=SamplingParams(max_new_tokens=2))
        for request in (short, long, late):
            engine.submit(request)

        engine.step()  # admits short + long; short finishes (1 token)
        assert engine.final_output(short.request_id).finished
        engine.step()  # late is admitted into short's slot while long runs
        assert engine.num_running == 2
        engine.run()
        assert engine.metrics.requests_finished == 3

    def test_per_request_metrics(self, model, tiny_config):
        prompt = make_prompts(tiny_config, (128,))[0]
        engine = InferenceEngine(model)
        request = Request(prompt_ids=prompt,
                          sampling=SamplingParams(max_new_tokens=3),
                          policy_spec=PolicySpec.named("pqcache", BUDGET))
        out = engine.run([request])[request.request_id]
        metrics = out.metrics
        assert metrics.ttft is not None and metrics.ttft > 0.0
        assert metrics.tpot is not None and metrics.tpot > 0.0
        assert metrics.decode_steps == 3
        assert metrics.num_prompt_tokens == 128
        assert metrics.num_generated_tokens == 3
        # PQCache keeps ~token_ratio of the context per step.
        assert 0 < metrics.mean_attended_tokens < 128
        # Offloading methods move bytes.  Blocking bytes are scaled by the
        # *per-step* GPU-cache hit rate: the first decode step's layer-0
        # retrieval is cold, so some blocking traffic is paid; once the
        # working set is resident later steps contribute zero.
        assert metrics.comm_blocking_bytes > 0.0
        assert metrics.comm_overlappable_bytes > 0.0
        assert metrics.e2e_seconds == pytest.approx(
            metrics.ttft + metrics.decode_seconds, rel=1e-6
        )

    def test_blocking_bytes_accounted_without_gpu_cache(self, model, tiny_config):
        """With the GPU block cache disabled nothing absorbs the top-k fetch,
        so every decode step pays blocking PCIe bytes."""
        prompt = make_prompts(tiny_config, (128,))[0]
        engine = InferenceEngine(model)
        request = Request(prompt_ids=prompt,
                          sampling=SamplingParams(max_new_tokens=3),
                          policy_spec=PolicySpec.named(
                              "pqcache", BUDGET,
                              pq_config=PQCacheConfig(gpu_cache_tokens=0)))
        out = engine.run([request])[request.request_id]
        assert out.metrics.comm_blocking_bytes > 0.0
        assert out.metrics.comm_overlappable_bytes > 0.0

    def test_output_retention_bound_and_release(self, model, tiny_config):
        """Finished outputs (which pin KVCaches) can be bounded or released."""
        prompts = make_prompts(tiny_config, (64, 64, 64), seed=5)
        engine = InferenceEngine(model, max_retained_outputs=2)
        requests = [Request(prompt_ids=p, sampling=SamplingParams(max_new_tokens=1))
                    for p in prompts]
        outputs = engine.run(requests)
        assert len(outputs) == 3  # run() returned everything that finished
        # ...but only the 2 newest outputs stay retained in the engine.
        with pytest.raises(ConfigurationError):
            engine.final_output(requests[0].request_id)
        engine.final_output(requests[2].request_id)
        engine.release(requests[2].request_id)
        with pytest.raises(ConfigurationError):
            engine.final_output(requests[2].request_id)

    def test_stop_token_finishes_early(self, model, tiny_config):
        prompt = make_prompts(tiny_config, (100,))[0]
        reference = greedy_generate(model, prompt, max_new_tokens=4)
        stop = reference.token_ids[1]
        engine = InferenceEngine(model)
        request = Request(
            prompt_ids=prompt,
            sampling=SamplingParams(max_new_tokens=4, stop_token_ids=(stop,)),
        )
        out = engine.run([request])[request.request_id]
        assert out.finish_reason == "stop"
        assert out.token_ids == reference.token_ids[:2]

    def test_forbidden_ids_respected(self, model, tiny_config):
        prompt = make_prompts(tiny_config, (100,))[0]
        engine = InferenceEngine(model)
        request = Request(
            prompt_ids=prompt,
            sampling=SamplingParams(max_new_tokens=4,
                                    forbidden_ids=tuple(range(256))),
        )
        out = engine.run([request])[request.request_id]
        assert all(t >= 256 for t in out.token_ids)

    def test_forced_decode_mode(self, model, tiny_config):
        """Teacher forcing decodes exactly the given tokens, generates none."""
        prompt = make_prompts(tiny_config, (100,))[0]
        engine = InferenceEngine(model)
        request = Request(prompt_ids=prompt, forced_decode_ids=[7, 8, 9],
                          policy_spec=PolicySpec.named("pqcache", BUDGET))
        out = engine.run([request])[request.request_id]
        assert out.token_ids == []
        assert out.metrics.decode_steps == 3
        assert out.prefill.kvcache.seq_len == 103
        assert len(out.selections) == 3
        assert len(out.selections[0]) == tiny_config.num_layers


class TestSchedulerAndSpecs:
    def test_scheduler_admission_caps(self):
        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(max_batch_size=3, max_prefills_per_step=1)
        )
        for item in "abcd":
            scheduler.submit(item)
        first = scheduler.schedule()
        assert first.admitted == ["a"] and first.decodes == ["a"]
        second = scheduler.schedule()
        assert second.admitted == ["b"] and second.decodes == ["a", "b"]
        scheduler.finish("a")
        third = scheduler.schedule()
        assert third.admitted == ["c"] and set(third.decodes) == {"b", "c"}

    def test_scheduler_config_validated(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(max_batch_size=0)
        with pytest.raises(ConfigurationError):
            SchedulerConfig(max_prefills_per_step=0)

    def test_policy_spec_from_instance_is_single_use(self, budget):
        spec = PolicySpec.from_instance(build_policy("full", budget))
        spec.build()
        with pytest.raises(ConfigurationError):
            spec.build()

    def test_policy_spec_validation(self, budget):
        with pytest.raises(ConfigurationError):
            PolicySpec(name="pqcache")  # budget missing
        with pytest.raises(ConfigurationError):
            PolicySpec().build()  # empty spec
        with pytest.raises(ConfigurationError):
            # Unknown names fail at request-creation time, not mid-serving.
            PolicySpec.named("not-a-policy", budget)

    def test_duplicate_request_id_rejected(self, model, tiny_config):
        prompt = make_prompts(tiny_config, (64,))[0]
        engine = InferenceEngine(model)
        request = Request(prompt_ids=prompt, request_id="dup")
        engine.submit(request)
        with pytest.raises(ConfigurationError):
            engine.submit(Request(prompt_ids=prompt, request_id="dup"))

    def test_sampling_params_validated(self):
        with pytest.raises(ConfigurationError):
            SamplingParams(max_new_tokens=0)

    def test_empty_prompt_rejected(self):
        with pytest.raises(ConfigurationError):
            Request(prompt_ids=[])

    def test_resolve_method_mapping(self):
        assert resolve_method(None) == "full"
        assert resolve_method("pqcache") == "pqcache"
        assert resolve_method("h2o(c)") == "h2o"
        assert resolve_method("streaming-llm") == "snapkv"
        assert resolve_method("custom-dropper", is_dropping=True) == "snapkv"
        assert resolve_method("custom-offloader") == "sparq"

    def test_step_selections_type_shared(self, model, tiny_config):
        """Engine outputs and the legacy wrapper share StepSelections."""
        prompt = make_prompts(tiny_config, (100,))[0]
        result = greedy_generate(model, prompt, max_new_tokens=2,
                                 policy=build_policy("pqcache", BUDGET))
        step = result.selections[0]
        assert isinstance(step, list) and len(step) == tiny_config.num_layers
        for layer_selection in step:
            assert layer_selection is None or all(
                isinstance(idx, np.ndarray) for idx in layer_selection
            )
        # The alias itself is exported and spells the same structure.
        assert StepSelections == list[list[np.ndarray] | None]
