"""Tests for the block-level GPU cache (LRU / LFU)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gpu_cache import BlockGpuCache, CacheStats
from repro.errors import ConfigurationError


class TestConstruction:
    def test_capacity_blocks(self):
        cache = BlockGpuCache(capacity_tokens=1024, block_size=128)
        assert cache.capacity_blocks == 8

    def test_invalid_policy(self):
        with pytest.raises(ConfigurationError):
            BlockGpuCache(capacity_tokens=128, policy="fifo")

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            BlockGpuCache(capacity_tokens=-1)
        with pytest.raises(ConfigurationError):
            BlockGpuCache(capacity_tokens=128, block_size=0)
        with pytest.raises(ConfigurationError):
            BlockGpuCache(capacity_tokens=128, k_cache_blocks=0)


class TestLookupAccess:
    def test_first_access_is_all_misses(self):
        cache = BlockGpuCache(capacity_tokens=512, block_size=128)
        result = cache.access(np.array([0, 1, 200]))
        assert result["hit_tokens"].size == 0
        assert result["miss_tokens"].size == 3

    def test_second_access_hits(self):
        cache = BlockGpuCache(capacity_tokens=512, block_size=128)
        cache.access(np.array([0, 1, 200]))
        result = cache.access(np.array([0, 1, 200]))
        assert result["miss_tokens"].size == 0
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_per_step_hit_rate_covers_accesses_since_begin_step(self):
        """Regression: blocking-byte estimates used the *cumulative* hit
        rate, letting earlier steps' hits/misses leak into the current
        step's traffic estimate.  ``step_hit_rate`` must aggregate exactly
        the accesses since the last ``begin_step()`` (one decode step spans
        one access per layer)."""
        cache = BlockGpuCache(capacity_tokens=512, block_size=128)
        cache.begin_step()
        cache.access(np.array([0, 1, 200]))          # layer 0, cold: 0/3
        cache.access(np.array([0, 1, 200]))          # layer 1, warm: 3/3
        assert cache.stats.step_hit_rate == pytest.approx(0.5)

        cache.begin_step()                           # next decode step
        cache.access(np.array([0, 1, 200]))          # warm: 3/3
        assert cache.stats.step_hit_rate == 1.0
        # The cumulative rate keeps the whole history for reporting.
        assert cache.stats.hit_rate == pytest.approx(6 / 9)

        cache.begin_step()
        cache.access(np.array([0, 900]))             # mixed: 1/2
        assert cache.stats.step_hit_rate == pytest.approx(0.5)
        assert cache.stats.hit_rate == pytest.approx(7 / 11)

    def test_per_step_hit_rate_before_any_access_is_zero(self):
        cache = BlockGpuCache(capacity_tokens=512)
        assert cache.stats.step_hit_rate == 0.0
        stats = cache.stats.as_dict()
        assert stats["step_hit_rate"] == 0.0
        assert stats["hit_rate"] == 0.0

    def test_step_counters_track_cumulative_without_begin_step(self):
        cache = BlockGpuCache(capacity_tokens=512, block_size=128)
        cache.access(np.array([0, 1, 200]))
        cache.access(np.array([0, 1, 200]))
        assert cache.stats.step_hit_rate == cache.stats.hit_rate

    def test_empty_request(self):
        cache = BlockGpuCache(capacity_tokens=512)
        result = cache.access(np.array([], dtype=np.int64))
        assert result["miss_blocks"].size == 0

    def test_block_mapping(self):
        cache = BlockGpuCache(capacity_tokens=512, block_size=128)
        assert cache.block_of(0) == 0
        assert cache.block_of(127) == 0
        assert cache.block_of(128) == 1
        assert list(cache.tokens_to_blocks(np.array([0, 127, 129]))) == [0, 1]

    def test_zero_capacity_never_caches(self):
        cache = BlockGpuCache(capacity_tokens=0, block_size=128)
        cache.access(np.array([5]))
        result = cache.access(np.array([5]))
        assert result["miss_tokens"].size == 1

    def test_miss_bytes(self):
        cache = BlockGpuCache(capacity_tokens=256, block_size=128)
        assert cache.miss_bytes(np.array([0, 1]), bytes_per_token=100.0) == 200.0
        cache.access(np.array([0, 1]))
        assert cache.miss_bytes(np.array([0, 1]), bytes_per_token=100.0) == 0.0


class TestEviction:
    def test_lru_evicts_oldest(self):
        cache = BlockGpuCache(capacity_tokens=256, block_size=128, policy="lru",
                              k_cache_blocks=1)
        cache.access(np.array([0]))      # block 0
        cache.access(np.array([128]))    # block 1
        cache.access(np.array([256]))    # block 2 -> evicts block 0
        assert 0 not in cache
        assert 1 in cache and 2 in cache

    def test_lru_refresh_on_access(self):
        cache = BlockGpuCache(capacity_tokens=256, block_size=128, policy="lru",
                              k_cache_blocks=1)
        cache.access(np.array([0]))
        cache.access(np.array([128]))
        cache.access(np.array([0]))      # refresh block 0
        cache.access(np.array([256]))    # should evict block 1 (least recent)
        assert 0 in cache
        assert 1 not in cache

    def test_lfu_evicts_least_frequent(self):
        cache = BlockGpuCache(capacity_tokens=256, block_size=128, policy="lfu",
                              k_cache_blocks=1)
        cache.access(np.array([0]))
        cache.access(np.array([0]))
        cache.access(np.array([128]))
        cache.access(np.array([256]))    # evicts block 1 (freq 1), keeps block 0 (freq 2)
        assert 0 in cache
        assert 1 not in cache

    def test_eviction_counter(self):
        cache = BlockGpuCache(capacity_tokens=128, block_size=128, k_cache_blocks=1)
        cache.access(np.array([0]))
        cache.access(np.array([128]))
        assert cache.stats.block_evictions == 1

    def test_clear(self):
        cache = BlockGpuCache(capacity_tokens=512)
        cache.access(np.array([0, 1]))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0


class TestKCacheBlocks:
    def test_only_top_blocks_are_inserted(self):
        cache = BlockGpuCache(capacity_tokens=10 * 128, block_size=128,
                              k_cache_blocks=1)
        # Block 0 contains 3 requested tokens, block 5 only one: with
        # k_cache_blocks=1 only block 0 enters the cache.
        cache.access(np.array([0, 1, 2, 5 * 128]))
        assert 0 in cache
        assert 5 not in cache


class TestStats:
    def test_hit_rate_zero_without_lookups(self):
        assert CacheStats().hit_rate == 0.0

    def test_as_dict_keys(self):
        stats = CacheStats(lookups=1, token_hits=2, token_misses=2)
        d = stats.as_dict()
        assert d["hit_rate"] == pytest.approx(0.5)
        assert set(d) >= {"lookups", "token_hits", "token_misses"}

    @given(st.lists(st.integers(0, 2000), min_size=1, max_size=50))
    @settings(max_examples=25, deadline=None)
    def test_hit_rate_bounded(self, tokens):
        cache = BlockGpuCache(capacity_tokens=512, block_size=64)
        for token in tokens:
            cache.access(np.array([token]))
        assert 0.0 <= cache.stats.hit_rate <= 1.0
        assert len(cache) <= cache.capacity_blocks
