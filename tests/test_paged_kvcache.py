"""Paged KVCache: block allocator, block tables, COW, and exhaustion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.llm import KVCache
from repro.llm.kvcache import BlockAllocator, BlockTable, PagedKVCache


def make_allocator(capacity=None, block_size=4, num_layers=2, h_kv=2, d_h=8):
    return BlockAllocator(
        num_layers, h_kv, d_h, block_size=block_size, capacity_blocks=capacity
    )


def random_kv(rng, h_kv=2, t=1, d_h=8):
    return rng.normal(size=(h_kv, t, d_h)), rng.normal(size=(h_kv, t, d_h))


# ----------------------------------------------------------------- allocator


class TestBlockAllocator:
    def test_allocate_incref_decref_cycle(self):
        alloc = make_allocator()
        bid = alloc.allocate()
        assert alloc.refcount(bid) == 1
        alloc.incref(bid)
        assert alloc.refcount(bid) == 2
        assert alloc.decref(bid) is False
        assert alloc.decref(bid) is True  # freed
        assert alloc.num_free == 1
        assert alloc.num_allocated == 0

    def test_refcount_underflow_raises(self):
        alloc = make_allocator()
        bid = alloc.allocate()
        assert alloc.decref(bid) is True
        with pytest.raises(ConfigurationError):
            alloc.decref(bid)  # block already free: underflow
        with pytest.raises(ConfigurationError):
            alloc.refcount(bid)

    def test_freed_blocks_are_recycled_zeroed(self):
        alloc = make_allocator(capacity=1)
        bid = alloc.allocate()
        alloc.block_keys(bid)[...] = 7.0
        alloc.decref(bid)
        again = alloc.allocate()
        assert again == bid
        assert np.all(alloc.block_keys(again) == 0.0)

    def test_capacity_exhaustion_raises(self):
        alloc = make_allocator(capacity=2)
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(CapacityError):
            alloc.allocate()

    def test_eviction_hook_rescues_allocation(self):
        alloc = make_allocator(capacity=2)
        first = alloc.allocate()
        alloc.allocate()
        calls = []

        def hook(n):
            calls.append(n)
            alloc.decref(first)
            return 1

        alloc.eviction_hook = hook
        third = alloc.allocate()
        # The hook is asked for a small batch to amortise multi-block
        # admissions; freeing even one block rescues this allocation.
        assert calls == [BlockAllocator._EVICTION_BATCH]
        assert third == first  # recycled via the hook

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            make_allocator(block_size=0)
        with pytest.raises(ConfigurationError):
            make_allocator(capacity=0)


# --------------------------------------------------------------- block table


class TestBlockTable:
    def test_fork_shares_and_release_is_idempotent(self):
        alloc = make_allocator()
        table = BlockTable(alloc)
        bid = table.append_new()
        fork = table.fork()
        assert alloc.refcount(bid) == 2
        fork.release()
        fork.release()  # idempotent
        assert alloc.refcount(bid) == 1
        table.release()
        assert alloc.num_allocated == 0

    def test_released_table_rejects_use(self):
        alloc = make_allocator()
        table = BlockTable(alloc)
        table.append_new()
        table.release()
        with pytest.raises(ConfigurationError):
            table.append_new()
        with pytest.raises(ConfigurationError):
            table.fork()


# -------------------------------------------------------------- paged cache


class TestPagedKVCache:
    def test_matches_monolithic_bitwise(self, rng):
        alloc = make_allocator()
        paged = PagedKVCache(alloc)
        mono = KVCache(2, 2, 8)
        for t in (1, 3, 4, 9, 1):
            k, v = random_kv(rng, t=t)
            for layer in range(2):
                paged[layer].append(k, v)
                mono[layer].append(k, v)
        assert len(paged) == len(mono)
        for layer in range(2):
            assert np.array_equal(paged[layer].keys, mono[layer].keys)
            assert np.array_equal(paged[layer].values, mono[layer].values)
            got_k, got_v = paged[layer].gather(np.array([0, 5, 17]))
            exp_k, exp_v = mono[layer].gather(np.array([0, 5, 17]))
            assert np.array_equal(got_k, exp_k)
            assert np.array_equal(got_v, exp_v)

    def test_blocks_mirror_assembled_content(self, rng):
        alloc = make_allocator()
        paged = PagedKVCache(alloc)
        k, v = random_kv(rng, t=6)
        for layer in range(2):
            paged[layer].append(k, v)
        # Re-attach the blocks into a second cache: identical content.
        fork = paged.table.fork()
        clone = PagedKVCache(alloc, prefix_table=fork, prefix_len=6)
        for layer in range(2):
            assert np.array_equal(clone[layer].keys, paged[layer].keys)
            assert np.array_equal(clone[layer].values, paged[layer].values)

    def test_cow_on_shared_block_append(self, rng):
        """Appending into a block shared with another cache must copy it."""
        alloc = make_allocator(block_size=4)
        base = PagedKVCache(alloc)
        k, v = random_kv(rng, t=6)  # blocks: [full, half]
        for layer in range(2):
            base[layer].append(k, v)
        snapshot = [base[layer].keys.copy() for layer in range(2)]

        fork = PagedKVCache(
            alloc, prefix_table=base.table.fork(), prefix_len=6
        )
        shared_last = base.table.block_ids[1]
        assert alloc.refcount(shared_last) == 2

        k2, v2 = random_kv(rng, t=3)
        for layer in range(2):
            fork[layer].append(k2, v2)
        # The fork copied the shared half-full block before writing into it.
        assert alloc.cow_copies >= 1
        assert fork.table.block_ids[1] != shared_last
        assert alloc.refcount(shared_last) == 1
        # Divergent suffixes, untouched shared prefix.
        for layer in range(2):
            assert np.array_equal(base[layer].keys, snapshot[layer])
            assert np.array_equal(fork[layer].keys[:, :6, :], snapshot[layer])
            assert np.array_equal(fork[layer].keys[:, 6:, :], k2)
        # And the *block contents* of the base stayed intact too.
        reread = PagedKVCache(
            alloc, prefix_table=base.table.fork(), prefix_len=6
        )
        for layer in range(2):
            assert np.array_equal(reread[layer].keys, snapshot[layer])

    def test_release_keeps_mirror_readable(self, rng):
        alloc = make_allocator()
        paged = PagedKVCache(alloc)
        k, v = random_kv(rng, t=5)
        for layer in range(2):
            paged[layer].append(k, v)
        paged.release()
        assert paged.released
        assert alloc.num_allocated == 0
        for layer in range(2):
            assert np.array_equal(paged[layer].keys, k if layer >= 0 else None)

    def test_capacity_failure_leaves_mirror_consistent(self, rng):
        alloc = make_allocator(capacity=1, block_size=4)
        paged = PagedKVCache(alloc)
        k, v = random_kv(rng, t=4)
        for layer in range(2):
            paged[layer].append(k, v)
        k2, v2 = random_kv(rng, t=1)
        with pytest.raises(CapacityError):
            paged[0].append(k2, v2)
        # The failed append must not have advanced the mirror.
        assert len(paged[0]) == 4

    def test_prefix_len_validation(self):
        alloc = make_allocator()
        with pytest.raises(ConfigurationError):
            PagedKVCache(alloc, prefix_len=4)  # no table
        table = BlockTable(alloc)
        table.append_new()
        with pytest.raises(ConfigurationError):
            PagedKVCache(alloc, prefix_table=table, prefix_len=99)
