"""Exact-equivalence tests for the batched (vectorized) decode hot path.

Every batched kernel introduced by the decode-path vectorization must be
*exactly* equal — ``np.array_equal`` / ``assert_allclose(rtol=0, atol=0)`` —
to the legacy per-head Python loops it replaced.  The reference
implementations below replicate the legacy loops' structure (one head at a
time, true-length reductions); where the old code used BLAS ``@`` for a
mat-vec, the reference uses the einsum equivalent so the comparison stays
bitwise-stable across BLAS builds (the batched kernels use the same einsum
contractions, and numpy's einsum reduces each output element over identical
value sequences whether or not a batch axis is present).
"""

import numpy as np
import pytest
from numpy.testing import assert_allclose

from repro.core import PQCacheConfig, PQCacheManager
from repro.core.kmeans import kmeans_assign
from repro.core.pq import PQConfig, ProductQuantizer, stack_codebooks
from repro.errors import ConfigurationError, DimensionError
from repro.llm import KVCache, ModelConfig
from repro.llm.attention import decode_attention
from repro.utils import softmax, topk_indices

SHAPES = [
    # (h, m, bits, sub_dim, n_codes)
    (1, 1, 3, 4, 17),
    (2, 2, 4, 8, 64),
    (4, 2, 5, 16, 200),
    (8, 4, 4, 8, 333),
]


def _fit_quantizers(rng, h, m, bits, sub_dim, n):
    dim = m * sub_dim
    quantizers = []
    codes = []
    for _ in range(h):
        pq = ProductQuantizer(
            PQConfig(dim=dim, num_partitions=m, num_bits=bits,
                     max_kmeans_iters=4, seed=int(rng.integers(1 << 30)))
        )
        codes.append(pq.fit(rng.normal(size=(n, dim))))
        quantizers.append(pq)
    return quantizers, np.stack(codes, axis=0)  # codes: (h, n, m)


def _legacy_lookup_table(pq, query):
    cfg = pq.config
    sub_queries = np.asarray(query, dtype=np.float64).reshape(
        cfg.num_partitions, cfg.sub_dim
    )
    return np.einsum("md,mcd->mc", sub_queries, pq.centroids)


def _legacy_score(pq, query, codes):
    table = _legacy_lookup_table(pq, query)
    codes = np.asarray(codes, dtype=np.int64)
    gathered = table[np.arange(pq.config.num_partitions)[None, :], codes]
    return gathered.sum(axis=1)


def _legacy_encode(pq, vectors):
    sub_vectors = pq._split(vectors)
    out = np.empty((vectors.shape[0], pq.config.num_partitions), dtype=np.uint16)
    for part in range(pq.config.num_partitions):
        out[:, part] = kmeans_assign(
            sub_vectors[part], pq.centroids[part]
        ).astype(np.uint16)
    return out


def _legacy_decode_attention(query, keys, values, per_head_indices):
    """The pre-vectorization nested ``kv_head x group`` loop."""
    query = np.asarray(query, dtype=np.float64)
    keys = np.asarray(keys, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    h, d_h = query.shape
    h_kv = keys.shape[0]
    group = h // h_kv
    output = np.zeros((h, d_h), dtype=np.float64)
    for kv_head, indices in enumerate(per_head_indices):
        if indices.size == 0:
            continue
        k = keys[kv_head, indices, :]
        v = values[kv_head, indices, :]
        for g in range(group):
            q_head = kv_head * group + g
            logits = np.einsum("td,d->t", k, query[q_head]) / np.sqrt(d_h)
            weights = softmax(logits)
            output[q_head] = np.einsum("t,td->d", weights, v)
    return output


class TestStackCodebooks:
    def test_shape(self, rng):
        quantizers, _ = _fit_quantizers(rng, 3, 2, 4, 8, 50)
        stacked = stack_codebooks(quantizers)
        assert stacked.shape == (3, 2, 16, 8)
        for head, pq in enumerate(quantizers):
            assert np.array_equal(stacked[head], pq.centroids)

    def test_rejects_empty_and_mixed(self, rng):
        with pytest.raises(ConfigurationError):
            stack_codebooks([])
        q_a, _ = _fit_quantizers(rng, 1, 2, 4, 8, 50)
        q_b, _ = _fit_quantizers(rng, 1, 2, 3, 8, 50)
        with pytest.raises(DimensionError):
            stack_codebooks([q_a[0], q_b[0]])


class TestBatchedKernelsMatchPerHeadLoops:
    @pytest.mark.parametrize("h,m,bits,sub_dim,n", SHAPES)
    def test_lookup_table_batch(self, rng, h, m, bits, sub_dim, n):
        quantizers, _ = _fit_quantizers(rng, h, m, bits, sub_dim, n)
        codebooks = stack_codebooks(quantizers)
        queries = rng.normal(size=(h, m * sub_dim))
        batched = ProductQuantizer.lookup_table_batch(codebooks, queries)
        for head, pq in enumerate(quantizers):
            assert np.array_equal(
                batched[head], _legacy_lookup_table(pq, queries[head])
            )
            # The instance method must agree too (it wraps the batched one).
            assert np.array_equal(
                batched[head], pq.lookup_table(queries[head])
            )

    @pytest.mark.parametrize("h,m,bits,sub_dim,n", SHAPES)
    def test_score_batch(self, rng, h, m, bits, sub_dim, n):
        quantizers, codes = _fit_quantizers(rng, h, m, bits, sub_dim, n)
        codebooks = stack_codebooks(quantizers)
        queries = rng.normal(size=(h, m * sub_dim))
        batched = ProductQuantizer.score_batch(codebooks, queries, codes)
        assert batched.shape == (h, n)
        for head, pq in enumerate(quantizers):
            legacy = _legacy_score(pq, queries[head], codes[head])
            assert_allclose(batched[head], legacy, rtol=0, atol=0)
            assert_allclose(
                pq.score(queries[head], codes[head]), legacy, rtol=0, atol=0
            )

    def test_score_batch_empty_codes(self, rng):
        quantizers, _ = _fit_quantizers(rng, 2, 2, 3, 4, 20)
        codebooks = stack_codebooks(quantizers)
        queries = rng.normal(size=(2, 8))
        empty = np.zeros((2, 0, 2), dtype=np.uint16)
        scores = ProductQuantizer.score_batch(codebooks, queries, empty)
        assert scores.shape == (2, 0)

    @pytest.mark.parametrize("h,m,bits,sub_dim,n", SHAPES)
    def test_encode_batch(self, rng, h, m, bits, sub_dim, n):
        quantizers, _ = _fit_quantizers(rng, h, m, bits, sub_dim, n)
        codebooks = stack_codebooks(quantizers)
        vectors = rng.normal(size=(h, 37, m * sub_dim))
        batched = ProductQuantizer.encode_batch(codebooks, vectors)
        assert batched.shape == (h, 37, m)
        assert batched.dtype == np.uint16
        for head, pq in enumerate(quantizers):
            legacy = _legacy_encode(pq, vectors[head])
            assert np.array_equal(batched[head], legacy)
            assert np.array_equal(pq.encode(vectors[head]), legacy)

    def test_batched_shape_validation(self, rng):
        quantizers, codes = _fit_quantizers(rng, 2, 2, 3, 4, 20)
        codebooks = stack_codebooks(quantizers)
        queries = rng.normal(size=(2, 8))
        with pytest.raises(DimensionError):
            ProductQuantizer.lookup_table_batch(codebooks, rng.normal(size=(2, 7)))
        with pytest.raises(DimensionError):
            ProductQuantizer.score_batch(codebooks, queries, codes[:1])
        with pytest.raises(DimensionError):
            ProductQuantizer.encode_batch(codebooks, rng.normal(size=(2, 5, 7)))
        with pytest.raises(DimensionError):
            ProductQuantizer.score_batch(codebooks[0], queries, codes)


class TestVectorizedDecodeAttention:
    @pytest.mark.parametrize("h_kv,group,s,d_h", [
        (1, 1, 12, 4),
        (2, 2, 40, 8),
        (4, 1, 64, 16),
        (4, 4, 200, 8),
    ])
    def test_matches_per_head_loop_on_ragged_selections(
        self, rng, h_kv, group, s, d_h
    ):
        h = h_kv * group
        query = rng.normal(size=(h, d_h))
        keys = rng.normal(size=(h_kv, s, d_h))
        values = rng.normal(size=(h_kv, s, d_h))
        # Ragged per-head selections, including an empty one when h_kv > 1.
        selected = []
        for head in range(h_kv):
            t = 0 if (head == 1 and h_kv > 1) else int(rng.integers(1, s + 1))
            selected.append(
                rng.choice(s, size=t, replace=False).astype(np.int64)
            )
        out = decode_attention(query, keys, values, selected=selected)
        ref = _legacy_decode_attention(query, keys, values, selected)
        assert_allclose(out, ref, rtol=0, atol=0)

    def test_matches_per_head_loop_full_attention(self, rng):
        query = rng.normal(size=(4, 8))
        keys = rng.normal(size=(2, 30, 8))
        values = rng.normal(size=(2, 30, 8))
        out = decode_attention(query, keys, values)
        ref = _legacy_decode_attention(
            query, keys, values, [np.arange(30)] * 2
        )
        assert_allclose(out, ref, rtol=0, atol=0)

    def test_all_empty_selections_give_zero(self, rng):
        query = rng.normal(size=(4, 8))
        keys = rng.normal(size=(2, 30, 8))
        values = rng.normal(size=(2, 30, 8))
        empty = [np.empty(0, dtype=np.int64)] * 2
        out = decode_attention(query, keys, values, selected=empty)
        assert np.array_equal(out, np.zeros((4, 8)))


@pytest.fixture()
def built_manager(tiny_config, rng):
    cache = KVCache(tiny_config.num_layers, tiny_config.num_kv_heads,
                    tiny_config.head_dim)
    for layer in range(tiny_config.num_layers):
        keys = rng.normal(size=(tiny_config.num_kv_heads, 150,
                                tiny_config.head_dim))
        cache[layer].append(keys, keys)
    mgr = PQCacheManager(
        tiny_config,
        PQCacheConfig(num_partitions=2, num_bits=4, max_kmeans_iters=5,
                      gpu_cache_tokens=0),
    )
    mgr.build(cache)
    return mgr, cache


class TestManagerBatchedPathMatchesPerHead:
    def test_approximate_scores(self, built_manager, tiny_config, rng):
        mgr, _ = built_manager
        queries = rng.normal(size=(tiny_config.num_kv_heads,
                                   tiny_config.head_dim))
        batched = mgr.approximate_scores(0, queries)
        for head in range(tiny_config.num_kv_heads):
            legacy = _legacy_score(
                mgr.quantizer(0, head), queries[head], mgr.codes(0, head)
            )
            assert_allclose(batched[head], legacy, rtol=0, atol=0)

    @pytest.mark.parametrize("k", [1, 7, 10_000])
    def test_topk_middle(self, built_manager, tiny_config, rng, k):
        mgr, cache = built_manager
        segments = cache.segments(num_initial=4, num_local=16)
        queries = rng.normal(size=(tiny_config.num_kv_heads,
                                   tiny_config.head_dim))
        batched = mgr.topk_middle(0, queries, segments, k=k)
        middle = segments.middle_indices
        for head in range(tiny_config.num_kv_heads):
            codes = mgr.codes(0, head)
            valid = middle[middle < codes.shape[0]]
            scores = _legacy_score(mgr.quantizer(0, head), queries[head],
                                   codes[valid])
            order = topk_indices(scores, min(k, valid.size))
            assert np.array_equal(batched[head], valid[order])

    def test_topk_middle_ties_break_by_lowest_token(self, tiny_config, rng):
        """Duplicate keys produce identical ADC scores; the selection must
        prefer the lowest token indices, deterministically."""
        cache = KVCache(tiny_config.num_layers, tiny_config.num_kv_heads,
                        tiny_config.head_dim)
        one = rng.normal(size=(tiny_config.num_kv_heads, 1,
                               tiny_config.head_dim))
        keys = np.repeat(one, 64, axis=1)  # every token identical
        for layer in range(tiny_config.num_layers):
            cache[layer].append(keys, keys)
        mgr = PQCacheManager(
            tiny_config,
            PQCacheConfig(num_partitions=2, num_bits=4, max_kmeans_iters=3,
                          gpu_cache_tokens=0),
        )
        mgr.build(cache)
        segments = cache.segments(num_initial=4, num_local=16)
        queries = rng.normal(size=(tiny_config.num_kv_heads,
                                   tiny_config.head_dim))
        selected = mgr.topk_middle(0, queries, segments, k=5)
        first_middle = segments.middle_indices[:5]
        for per_head in selected:
            assert np.array_equal(np.sort(per_head), first_middle)

    def test_topk_middle_empty_middle(self, built_manager, tiny_config, rng):
        mgr, cache = built_manager
        segments = cache.segments(num_initial=100, num_local=50)
        assert segments.middle_indices.size == 0
        queries = rng.normal(size=(tiny_config.num_kv_heads,
                                   tiny_config.head_dim))
        selected = mgr.topk_middle(0, queries, segments, k=5)
        assert all(s.size == 0 for s in selected)

    def test_append_tokens_matches_per_token_appends(
        self, built_manager, tiny_config, rng
    ):
        mgr, _ = built_manager
        before = mgr.layer_codes(0).copy()
        new_keys = rng.normal(size=(tiny_config.num_kv_heads, 9,
                                    tiny_config.head_dim))
        mgr.append_tokens(0, new_keys)
        after = mgr.layer_codes(0)
        assert after.shape[0] == before.shape[0] + 9
        assert np.array_equal(after[: before.shape[0]], before)
        for head in range(tiny_config.num_kv_heads):
            legacy = _legacy_encode(mgr.quantizer(0, head), new_keys[head])
            assert np.array_equal(after[before.shape[0]:, head, :], legacy)

    def test_append_tokens_empty_is_noop(self, built_manager, tiny_config):
        mgr, _ = built_manager
        before = mgr.num_codes(0)
        mgr.append_tokens(
            0, np.zeros((tiny_config.num_kv_heads, 0, tiny_config.head_dim))
        )
        assert mgr.num_codes(0) == before

    def test_layer_codes_and_codebooks_shapes(self, built_manager, tiny_config):
        mgr, _ = built_manager
        cfg = mgr.config
        codes = mgr.layer_codes(0)
        assert codes.shape == (150, tiny_config.num_kv_heads,
                               cfg.num_partitions)
        assert codes.dtype == np.uint16
        books = mgr.codebooks(0)
        assert books.shape == (
            tiny_config.num_kv_heads,
            cfg.num_partitions,
            1 << cfg.num_bits,
            tiny_config.head_dim // cfg.num_partitions,
        )
