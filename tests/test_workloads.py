"""Tests for the synthetic workload generators, suites, needle grid, traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.llm import ModelConfig, TransformerLM
from repro.workloads import (
    INFINITEBENCH_TASKS,
    LONGBENCH_TASKS,
    NeedleGrid,
    Sample,
    TaskDataset,
    VocabLayout,
    collect_decode_attention,
    cot_arithmetic,
    counting,
    few_shot_recall,
    infinitebench_suite,
    kv_retrieval,
    longbench_qa_suite,
    longbench_suite,
    mass_concentration,
    multi_hop_qa,
    passkey_retrieval,
    power_law_exponent,
    single_fact_qa,
    summarization,
)

ALL_GENERATORS = [single_fact_qa, multi_hop_qa, summarization, few_shot_recall,
                  passkey_retrieval, kv_retrieval, counting, cot_arithmetic]


class TestVocabLayout:
    def test_ranges_disjoint(self):
        layout = VocabLayout()
        tags = set(range(*layout.tag_range))
        values = set(range(*layout.value_range))
        filler = set(range(*layout.filler_range))
        assert not tags & values
        assert not values & filler
        assert max(filler) == layout.vocab_size - 1

    def test_too_small_vocab(self):
        with pytest.raises(WorkloadError):
            VocabLayout(vocab_size=50, num_tags=40, num_values=40)

    def test_sampling_within_ranges(self, rng):
        layout = VocabLayout()
        tags = layout.sample_tags(rng, 10)
        lo, hi = layout.tag_range
        assert ((tags >= lo) & (tags < hi)).all()
        assert len(set(tags.tolist())) == 10


class TestSampleAndDataset:
    def test_sample_validation(self):
        with pytest.raises(WorkloadError):
            Sample(prompt_ids=[1, 2], probe_ids=[1], evidence_positions=[5])
        with pytest.raises(WorkloadError):
            Sample(prompt_ids=[1, 2], probe_ids=[], evidence_positions=[0])
        with pytest.raises(WorkloadError):
            Sample(prompt_ids=[], probe_ids=[1], evidence_positions=[])

    def test_dataset_validation(self):
        sample = Sample(prompt_ids=[1, 2, 3], probe_ids=[1], evidence_positions=[0])
        with pytest.raises(WorkloadError):
            TaskDataset(name="x", samples=[sample], metric="bleu")
        with pytest.raises(WorkloadError):
            TaskDataset(name="x", samples=[], metric="recovery")
        ds = TaskDataset(name="x", samples=[sample])
        assert len(ds) == 1
        assert ds.mean_prompt_len == 3.0


class TestGenerators:
    @pytest.mark.parametrize("generator", ALL_GENERATORS)
    def test_basic_invariants(self, generator):
        dataset = generator(num_samples=3, seq_len=256, seed=5)
        assert len(dataset) == 3
        layout = VocabLayout()
        for sample in dataset.samples:
            assert sample.prompt_len >= 200
            assert sample.evidence_positions.size > 0
            assert sample.evidence_positions.max() < sample.prompt_len
            assert all(0 <= t < layout.vocab_size for t in sample.prompt_ids)

    @pytest.mark.parametrize("generator", ALL_GENERATORS)
    def test_deterministic_by_seed(self, generator):
        a = generator(num_samples=2, seq_len=256, seed=3)
        b = generator(num_samples=2, seq_len=256, seed=3)
        assert a.samples[0].prompt_ids == b.samples[0].prompt_ids
        assert np.array_equal(a.samples[0].evidence_positions,
                              b.samples[0].evidence_positions)

    def test_evidence_tokens_match_probe(self):
        """The planted anchors must be occurrences of the probe token, which
        is what makes them retrievable through matching attention."""
        for generator in (single_fact_qa, passkey_retrieval, counting, few_shot_recall):
            dataset = generator(num_samples=3, seq_len=256, seed=1)
            for sample in dataset.samples:
                probe = sample.probe_ids[0]
                anchored = [sample.prompt_ids[p] for p in sample.evidence_positions]
                assert probe in anchored

    def test_kv_retrieval_evidence_matches_queried_tag(self):
        dataset = kv_retrieval(num_samples=4, seq_len=256, seed=2)
        for sample in dataset.samples:
            probe = sample.probe_ids[0]
            tokens = [sample.prompt_ids[p] for p in sample.evidence_positions]
            assert all(t == probe for t in tokens)

    def test_multi_hop_has_evidence_per_hop(self):
        dataset = multi_hop_qa(num_samples=3, seq_len=400, num_hops=3, seed=0)
        for sample in dataset.samples:
            assert sample.evidence_positions.size == 2 * 3
            assert sample.metadata["num_hops"] == 3

    def test_question_position_start_shifts_evidence(self):
        end = single_fact_qa(num_samples=2, seq_len=256, seed=9,
                             question_position="end")
        start = single_fact_qa(num_samples=2, seq_len=256, seed=9,
                               question_position="start")
        for s_end, s_start in zip(end.samples, start.samples):
            probe = s_end.probe_ids[0]
            assert s_start.prompt_ids[1] == probe  # question up front
            anchored = [s_start.prompt_ids[p] for p in s_start.evidence_positions]
            assert probe in anchored

    def test_invalid_question_position(self):
        with pytest.raises(WorkloadError):
            single_fact_qa(num_samples=1, seq_len=256, question_position="middle")

    def test_passkey_fixed_depth(self):
        shallow = passkey_retrieval(num_samples=3, seq_len=256, depth_fraction=0.1,
                                    seed=0)
        deep = passkey_retrieval(num_samples=3, seq_len=256, depth_fraction=0.9,
                                 seed=0)
        assert (np.mean([s.evidence_positions.mean() for s in shallow.samples])
                < np.mean([s.evidence_positions.mean() for s in deep.samples]))

    def test_counting_occurrence_count(self):
        dataset = counting(num_samples=2, seq_len=256, num_occurrences=7, seed=0)
        for sample in dataset.samples:
            assert sample.evidence_positions.size == 7
            probe = sample.probe_ids[0]
            assert all(sample.prompt_ids[p] == probe for p in sample.evidence_positions)

    @given(st.integers(200, 600))
    @settings(max_examples=10, deadline=None)
    def test_prompt_length_close_to_target(self, seq_len):
        dataset = single_fact_qa(num_samples=1, seq_len=seq_len, seed=seq_len)
        assert abs(dataset.samples[0].prompt_len - seq_len) <= 16


class TestSuites:
    def test_longbench_has_all_datasets(self):
        suite = longbench_suite(seq_len=256, num_samples=1)
        assert len(suite) == len(LONGBENCH_TASKS)
        assert {ds.name for ds in suite} == set(LONGBENCH_TASKS)

    def test_infinitebench_has_all_datasets(self):
        suite = infinitebench_suite(seq_len=256, num_samples=1)
        assert len(suite) == len(INFINITEBENCH_TASKS)
        assert {ds.name for ds in suite} == set(INFINITEBENCH_TASKS)

    def test_infinitebench_longer_than_longbench(self):
        lb = longbench_suite(seq_len=256, num_samples=1, tasks=("narrativeqa",))
        ib = infinitebench_suite(seq_len=512, num_samples=1, tasks=("en.qa",))
        assert ib[0].mean_prompt_len > lb[0].mean_prompt_len

    def test_qa_suite_question_first(self):
        suite = longbench_qa_suite(seq_len=256, num_samples=1)
        assert len(suite) == 6

    def test_subset_selection(self):
        suite = longbench_suite(seq_len=256, num_samples=1, tasks=("count", "retrieval"))
        assert [ds.name for ds in suite] == ["count", "retrieval"]


class TestNeedleGrid:
    def test_cells_cover_grid(self):
        grid = NeedleGrid(context_lengths=(128, 256), depth_fractions=(0.2, 0.8),
                          samples_per_cell=1)
        cells = grid.cells()
        assert len(cells) == 4
        lengths = {length for length, _, _ in cells}
        assert lengths == {128, 256}

    def test_cell_caching(self):
        grid = NeedleGrid(context_lengths=(128,), depth_fractions=(0.5,),
                          samples_per_cell=1)
        assert grid.cell(128, 0.5) is grid.cell(128, 0.5)

    def test_matrix_layout(self):
        scores = {(128, 0.2): 1.0, (128, 0.8): 0.5, (256, 0.2): 0.25, (256, 0.8): 0.0}
        matrix = NeedleGrid.to_matrix(scores, (128, 256), (0.2, 0.8))
        assert matrix.shape == (2, 2)
        assert matrix[0, 0] == 1.0
        assert matrix[1, 1] == 0.0

    def test_invalid_grid(self):
        with pytest.raises(WorkloadError):
            NeedleGrid(context_lengths=())
        with pytest.raises(WorkloadError):
            NeedleGrid(context_lengths=(32,))


class TestTraces:
    def test_collect_and_statistics(self, tiny_config):
        model = TransformerLM(tiny_config, seed=0)
        rng = np.random.default_rng(0)
        prompt = rng.integers(4, tiny_config.vocab_size, size=96).tolist()
        traces = collect_decode_attention(model, prompt, layers=(0, 1))
        assert len(traces) == 2 * tiny_config.num_kv_heads
        for trace in traces:
            assert trace.scores.shape == (96,)
            assert trace.scores.sum() == pytest.approx(1.0)
            top_mass = mass_concentration(trace, fraction=0.1)
            assert top_mass > 0.1  # top 10% of tokens hold more than 10% of mass
            assert power_law_exponent(trace) < 0.0  # decreasing rank-score curve
