"""Tests for device specs, the overlap timeline, and the latency models."""

import numpy as np
import pytest

from repro.core import PQCacheConfig
from repro.errors import ConfigurationError, SchedulingError
from repro.llm import ModelConfig
from repro.memory import (
    CpuSpec,
    GpuSpec,
    HardwareSpec,
    InterconnectSpec,
    LatencyModel,
    Resource,
    Timeline,
)


class TestDeviceSpecs:
    def test_gpu_compute_time(self):
        gpu = GpuSpec("test", tflops=10.0, memory_gb=16, memory_bandwidth_gbps=500)
        assert gpu.compute_seconds(10e12) == pytest.approx(1.0)

    def test_cpu_parallel_workers(self):
        cpu = CpuSpec("test", cores=8, gflops_per_core=2.0, memory_gb=64)
        assert cpu.compute_seconds(16e9) == pytest.approx(1.0)
        assert cpu.compute_seconds(16e9, parallel_workers=4) == pytest.approx(2.0)

    def test_interconnect_latency_term(self):
        link = InterconnectSpec("test", bandwidth_gbps=1.0, latency_us=100.0)
        assert link.transfer_seconds(1e9) == pytest.approx(1.0 + 1e-4)
        assert link.transfer_seconds(1e9, num_transfers=10) == pytest.approx(1.0 + 1e-3)

    def test_named_specs(self):
        assert GpuSpec.rtx4090().memory_gb == 24.0
        assert CpuSpec.dual_xeon_6330().cores == 56
        assert InterconnectSpec.pcie5_x16().bandwidth_gbps > InterconnectSpec.pcie1_x16().bandwidth_gbps
        hw = HardwareSpec.paper_testbed()
        assert hw.interconnect.name == "pcie-1.0-x16"

    def test_invalid_spec(self):
        with pytest.raises(ConfigurationError):
            GpuSpec("bad", tflops=0, memory_gb=1, memory_bandwidth_gbps=1)
        with pytest.raises(ConfigurationError):
            InterconnectSpec("bad", bandwidth_gbps=-1)


class TestTimeline:
    def test_same_resource_serialises(self):
        tl = Timeline()
        tl.add("a", Resource.GPU, 1.0)
        tl.add("b", Resource.GPU, 2.0)
        assert tl["b"].start == pytest.approx(1.0)
        assert tl.makespan == pytest.approx(3.0)

    def test_different_resources_overlap(self):
        tl = Timeline()
        tl.add("compute", Resource.GPU, 2.0)
        tl.add("transfer", Resource.D2H, 1.5)
        assert tl.makespan == pytest.approx(2.0)

    def test_dependencies_respected(self):
        tl = Timeline()
        tl.add("compute", Resource.GPU, 1.0)
        tl.add("offload", Resource.D2H, 0.5, depends_on=("compute",))
        tl.add("cluster", Resource.CPU, 2.0, depends_on=("offload",))
        assert tl["cluster"].start == pytest.approx(1.5)
        assert tl.makespan == pytest.approx(3.5)

    def test_duplicate_task_name_rejected(self):
        tl = Timeline()
        tl.add("a", Resource.GPU, 1.0)
        with pytest.raises(SchedulingError, match="duplicate task name"):
            tl.add("a", Resource.GPU, 1.0)

    def test_unknown_dependency_rejected(self):
        tl = Timeline()
        tl.add("a", Resource.GPU, 1.0)
        with pytest.raises(SchedulingError, match="unknown dependencies"):
            tl.add("b", Resource.GPU, 1.0, depends_on=("missing",))

    def test_unknown_resource_rejected(self):
        tl = Timeline()
        with pytest.raises(SchedulingError, match="unknown resource"):
            tl.add("c", "tpu", 1.0)

    def test_negative_duration_rejected(self):
        tl = Timeline()
        with pytest.raises(SchedulingError):
            tl.add("d", Resource.GPU, -1.0)

    def test_dependency_cycles_are_impossible(self):
        """Self-dependencies are guarded explicitly; longer cycles cannot be
        expressed because every dependency must already be scheduled."""
        tl = Timeline()
        with pytest.raises(SchedulingError, match="cycle"):
            tl.add("a", Resource.GPU, 1.0, depends_on=("a",))
        # A two-task cycle requires naming a future task, which is rejected
        # as an unknown dependency before any cycle can form.
        with pytest.raises(SchedulingError, match="unknown dependencies"):
            tl.add("b", Resource.GPU, 1.0, depends_on=("c",))
        assert len(tl) == 0  # nothing was partially added

    def test_utilisation_and_busy_time(self):
        tl = Timeline()
        tl.add("a", Resource.GPU, 2.0)
        tl.add("b", Resource.CPU, 1.0)
        util = tl.utilisation()
        assert util[Resource.GPU] == pytest.approx(1.0)
        assert util[Resource.CPU] == pytest.approx(0.5)
        assert tl.resource_busy_time(Resource.GPU) == pytest.approx(2.0)

    def test_critical_path_follows_blockers(self):
        tl = Timeline()
        tl.add("a", Resource.GPU, 1.0)
        tl.add("b", Resource.D2H, 3.0, depends_on=("a",))
        tl.add("c", Resource.GPU, 0.5, depends_on=("b",))
        path = tl.critical_path()
        assert path == ["a", "b", "c"]

    def test_records_serialisable(self):
        tl = Timeline()
        tl.add("a", Resource.GPU, 1.0)
        records = tl.as_records()
        assert records[0]["name"] == "a"
        assert set(records[0]) >= {"resource", "start", "finish", "duration"}

    def test_empty_timeline(self):
        tl = Timeline()
        assert tl.makespan == 0.0
        assert tl.critical_path() == []


@pytest.fixture(scope="module")
def latency_model():
    return LatencyModel(
        HardwareSpec.paper_testbed(),
        ModelConfig.llama3_8b(),
        PQCacheConfig(num_partitions=2, num_bits=6),
        token_ratio=0.2,
        comm_ratio=1.0 / 128.0,
    )


class TestLatencyModel:
    def test_prefill_components_scale_as_paper_figure8(self, latency_model):
        """Compute grows quadratically, offload and clustering linearly, so
        for long enough prompts compute dominates both (Figure 8)."""
        short = latency_model.prefill_decomposition(2048)
        long = latency_model.prefill_decomposition(65536)
        assert long["compute"] / short["compute"] > 20
        assert long["offload"] / short["offload"] == pytest.approx(32, rel=0.05)
        assert long["compute"] > long["offload"]
        assert long["compute"] > long["clustering"]

    def test_prefill_timeline_overlaps(self, latency_model):
        timeline = latency_model.prefill_timeline(32768, method="pqcache")
        gpu_only = latency_model.layer_prefill_compute_seconds(32768) * \
            latency_model.model.num_layers
        # Overlap means total makespan stays close to pure GPU time.
        assert timeline.makespan < 1.5 * gpu_only

    def test_h2o_prefill_slower_than_pqcache(self, latency_model):
        h2o = latency_model.prefill_timeline(32768, method="h2o").makespan
        pqc = latency_model.prefill_timeline(32768, method="pqcache").makespan
        assert h2o > pqc

    def test_tt2t_ordering_matches_figure11a(self, latency_model):
        """Figure 11a: H2O (no FlashAttention) has by far the worst TT2T,
        while PQCache is within a few percent of the best method thanks to
        overlapped clustering."""
        seq = 32768
        tt2t = {m: latency_model.tt2t(seq, m) for m in ("pqcache", "sparq", "h2o",
                                                        "snapkv")}
        assert tt2t["pqcache"] < tt2t["h2o"]
        assert tt2t["pqcache"] <= 1.10 * min(tt2t.values())

    def test_tpot_sparq_grows_with_sequence_pqcache_stays_flat(self, latency_model):
        """Figure 11b: SPARQ's per-token latency scales with sequence length,
        PQCache's stays nearly flat once the retrieval set saturates."""
        sparq_growth = latency_model.tpot(131072, "sparq") / latency_model.tpot(32768, "sparq")
        pqc_growth = latency_model.tpot(131072, "pqcache") / latency_model.tpot(32768, "pqcache")
        assert sparq_growth > 1.5
        assert pqc_growth < 1.3
        assert sparq_growth > pqc_growth

    def test_gpu_cache_hit_rate_reduces_tpot(self, latency_model):
        """Figure 11c: a warmer GPU cache lowers the per-token latency."""
        cold = latency_model.tpot(32768, "pqcache", cache_hit_rate=0.0)
        warm = latency_model.tpot(32768, "pqcache", cache_hit_rate=0.6)
        assert warm < cold

    def test_decode_decomposition_components(self, latency_model):
        parts = latency_model.decode_decomposition(32768, "pqcache")
        assert set(parts) == {"llm_compute", "pq_compute", "overlappable_comm",
                              "blocking_comm"}
        assert all(v >= 0 for v in parts.values())
        # PQ search is cheap relative to the LLM compute (§3.2).
        assert parts["pq_compute"] < parts["llm_compute"]

    def test_h2o_dense_scores_can_exceed_gpu_memory(self, latency_model):
        """H2O cannot use FlashAttention; at 128K context the materialised
        score matrix alone exceeds a 24 GB GPU (the paper reports OOM)."""
        needed = latency_model.gpu_memory_required_prefill(128 * 1024, "h2o")
        assert needed > 24 * 1024 ** 3
        pqc = latency_model.gpu_memory_required_prefill(128 * 1024, "pqcache")
        assert needed > pqc

    def test_unknown_method_rejected(self, latency_model):
        with pytest.raises(ConfigurationError):
            latency_model.tpot(1024, "magic")
        with pytest.raises(ConfigurationError):
            LatencyModel(HardwareSpec.paper_testbed(), ModelConfig.tiny(),
                         token_ratio=0.0)

    def test_methods_listed(self, latency_model):
        assert "pqcache" in latency_model.methods()


class TestChunkedPrefillLatency:
    def test_chunk_charges_telescope_to_monolithic_compute(self, latency_model):
        chunks = [4096] * 8
        total = sum(
            latency_model.prefill_chunk_seconds(c, i * 4096, "full")
            for i, c in enumerate(chunks)
        )
        mono = latency_model.layer_prefill_compute_seconds(32768) \
            * latency_model.model.num_layers
        assert total == pytest.approx(mono, rel=1e-12)

    def test_chunked_timeline_overlaps(self, latency_model):
        chunks = [8192] * 8
        timeline = latency_model.chunked_prefill_timeline(chunks, "pqcache",
                                                          iterations=16)
        gpu = timeline.resource_busy_time(Resource.GPU)
        sequential = sum(task.duration for task in timeline.tasks)
        # Genuine overlap: strictly below the sequential execution of
        # compute + offload + clustering/encode/refine...
        assert timeline.makespan < sequential
        # ...and construction is almost entirely hidden behind compute.
        assert timeline.makespan < 1.05 * gpu
        # Dependency sanity: every chunk's offload follows its compute.
        assert timeline["offload-C3-L0"].start >= timeline["compute-C3-L0"].finish

    def test_chunked_timeline_close_to_monolithic_makespan(self, latency_model):
        chunks = [8192] * 8
        chunked = latency_model.chunked_prefill_timeline(chunks, "pqcache",
                                                         iterations=16).makespan
        mono = latency_model.prefill_timeline(65536, "pqcache",
                                              iterations=16).makespan
        assert chunked == pytest.approx(mono, rel=0.1)

    def test_refine_overlaps_last_chunk(self, latency_model):
        chunks = [8192] * 8
        timeline = latency_model.chunked_prefill_timeline(chunks, "pqcache",
                                                          iterations=16)
        # Early layers refine while the last chunk's compute is running.
        assert timeline["refine-L0"].start < timeline["compute-C7-L31"].finish

    def test_non_pq_methods_have_no_construction_tasks(self, latency_model):
        timeline = latency_model.chunked_prefill_timeline([1024] * 4, "full")
        assert all(t.resource == Resource.GPU for t in timeline.tasks)
        timeline = latency_model.chunked_prefill_timeline([1024] * 4, "sparq")
        assert any(t.resource == Resource.D2H for t in timeline.tasks)
        assert not any(t.name.startswith("cluster") for t in timeline.tasks)

    def test_infllm_block_setup_tasks_present(self, latency_model):
        timeline = latency_model.chunked_prefill_timeline([1024] * 4, "infllm")
        blocks = [t for t in timeline.tasks if t.name.startswith("blocks-")]
        assert len(blocks) == 4 * latency_model.model.num_layers
        assert not any(t.name.startswith("refine") for t in timeline.tasks)

    def test_h2o_chunk_score_bytes_telescope(self, latency_model):
        chunks = [2048] * 8
        total = sum(
            latency_model.prefill_chunk_seconds(c, i * 2048, "h2o")
            for i, c in enumerate(chunks)
        )
        mono = latency_model.prefill_timeline(16384, "h2o").makespan
        assert total == pytest.approx(mono, rel=1e-12)

    def test_chunk_lens_validated(self, latency_model):
        with pytest.raises(ConfigurationError):
            latency_model.chunked_prefill_timeline([], "pqcache")
        with pytest.raises(ConfigurationError):
            latency_model.chunked_prefill_timeline([128, 0], "pqcache")
        with pytest.raises(ConfigurationError):
            latency_model.chunked_prefill_timeline([128], "magic")
