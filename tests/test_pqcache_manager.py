"""Tests for PQCacheManager: per-layer/head PQ over the KVCache."""

import numpy as np
import pytest

from repro.core import PQCacheConfig, PQCacheManager
from repro.errors import ConfigurationError, NotFittedError
from repro.llm import KVCache, ModelConfig


@pytest.fixture()
def kvcache(tiny_config, rng):
    cache = KVCache(tiny_config.num_layers, tiny_config.num_kv_heads,
                    tiny_config.head_dim)
    for layer in range(tiny_config.num_layers):
        keys = rng.normal(size=(tiny_config.num_kv_heads, 200, tiny_config.head_dim))
        values = rng.normal(size=(tiny_config.num_kv_heads, 200, tiny_config.head_dim))
        cache[layer].append(keys, values)
    return cache


@pytest.fixture()
def manager(tiny_config, kvcache):
    mgr = PQCacheManager(tiny_config, PQCacheConfig(num_partitions=2, num_bits=4,
                                                    max_kmeans_iters=8,
                                                    gpu_cache_tokens=512))
    mgr.build(kvcache)
    return mgr


class TestConfig:
    def test_communication_ratio_matches_paper(self):
        cfg = PQCacheConfig(num_partitions=2, num_bits=6)
        assert cfg.communication_ratio(head_dim=128) <= 1 / 128
        cfg64 = PQCacheConfig(num_partitions=4, num_bits=8)
        assert cfg64.communication_ratio(head_dim=128) == pytest.approx(1 / 64)

    def test_incompatible_partitions_rejected(self, tiny_config):
        with pytest.raises(ConfigurationError):
            PQCacheManager(tiny_config, PQCacheConfig(num_partitions=5))


class TestBuild:
    def test_requires_build_before_use(self, tiny_config):
        mgr = PQCacheManager(tiny_config)
        assert not mgr.is_built
        with pytest.raises(NotFittedError):
            mgr.approximate_scores(0, np.zeros((tiny_config.num_kv_heads,
                                                tiny_config.head_dim)))

    def test_build_creates_codes_for_every_layer_head(self, manager, tiny_config):
        assert manager.is_built
        for layer in range(tiny_config.num_layers):
            for head in range(tiny_config.num_kv_heads):
                assert manager.codes(layer, head).shape == (200, 2)

    def test_iteration_budget_respected(self, tiny_config, kvcache):
        mgr = PQCacheManager(tiny_config, PQCacheConfig(num_partitions=2, num_bits=4))
        mgr.build(kvcache, max_iters=1)
        limited = mgr.total_kmeans_iterations
        mgr.build(kvcache, max_iters=20)
        assert limited <= mgr.total_kmeans_iterations


class TestScoresAndTopK:
    def test_scores_shape(self, manager, tiny_config, rng):
        queries = rng.normal(size=(tiny_config.num_kv_heads, tiny_config.head_dim))
        scores = manager.approximate_scores(1, queries)
        assert scores.shape == (tiny_config.num_kv_heads, 200)

    def test_topk_respects_middle_segment(self, manager, tiny_config, rng, kvcache):
        segments = kvcache.segments(num_initial=4, num_local=16)
        queries = rng.normal(size=(tiny_config.num_kv_heads, tiny_config.head_dim))
        selected = manager.topk_middle(0, queries, segments, k=10)
        middle = set(segments.middle_indices.tolist())
        for per_head in selected:
            assert len(per_head) == 10
            assert set(per_head.tolist()) <= middle

    def test_topk_matches_exact_on_easy_case(self, tiny_config, rng):
        # With a high-resolution codebook and few distinct key directions the
        # approximate top-k must recover most of the exact top-k.
        cache = KVCache(tiny_config.num_layers, tiny_config.num_kv_heads,
                        tiny_config.head_dim)
        base = rng.normal(size=(8, tiny_config.head_dim))
        keys = base[rng.integers(0, 8, size=160)]
        keys = np.broadcast_to(keys, (tiny_config.num_kv_heads, 160,
                                      tiny_config.head_dim)).copy()
        for layer in range(tiny_config.num_layers):
            cache[layer].append(keys, keys)
        mgr = PQCacheManager(tiny_config, PQCacheConfig(num_partitions=2, num_bits=6,
                                                        max_kmeans_iters=20))
        mgr.build(cache)
        segments = cache.segments(num_initial=0, num_local=0)
        queries = np.broadcast_to(base[0], (tiny_config.num_kv_heads,
                                            tiny_config.head_dim)).copy()
        selected = mgr.topk_middle(0, queries, segments, k=20)
        exact = np.argsort(-(keys[0] @ base[0]))[:20]
        overlap = len(set(selected[0].tolist()) & set(exact.tolist()))
        assert overlap >= 12

    def test_topk_empty_middle(self, manager, tiny_config, rng, kvcache):
        segments = kvcache.segments(num_initial=150, num_local=100)
        queries = rng.normal(size=(tiny_config.num_kv_heads, tiny_config.head_dim))
        selected = manager.topk_middle(0, queries, segments, k=5)
        assert all(s.size == 0 for s in selected)


class TestAppendToken:
    def test_append_extends_codes(self, manager, tiny_config, rng):
        before = manager.num_codes(0)
        manager.append_token(0, rng.normal(size=(tiny_config.num_kv_heads,
                                                 tiny_config.head_dim)))
        assert manager.num_codes(0) == before + 1

    def test_appended_token_is_searchable(self, manager, tiny_config, kvcache, rng):
        # Append an exact copy of token 0's keys: the new token must receive
        # the same codes, hence the same approximate score, as token 0.
        key = kvcache[0].keys[:, 0, :]
        manager.append_token(0, key)
        queries = rng.normal(size=(tiny_config.num_kv_heads, tiny_config.head_dim))
        scores = manager.approximate_scores(0, queries)
        assert scores.shape[1] == 201
        assert np.allclose(scores[:, 200], scores[:, 0])

    def test_many_appends_preserve_codes(self, manager, tiny_config, kvcache, rng):
        """Appends go through the amortised-growth buffer: earlier codes
        survive capacity doublings byte-for-byte."""
        before = manager.codes(0, 0).copy()
        reference_key = kvcache[0].keys[:, 0, :]
        for _ in range(70):  # force at least one capacity doubling
            manager.append_token(0, reference_key)
        after = manager.codes(0, 0)
        assert after.shape[0] == before.shape[0] + 70
        assert np.array_equal(after[: before.shape[0]], before)
        # Every appended row equals token 0's codes (identical key vector).
        assert np.array_equal(
            after[before.shape[0]:],
            np.broadcast_to(before[0], (70, before.shape[1])),
        )

    def test_codes_returns_live_view(self, manager, tiny_config, rng):
        """codes() is a cheap view over the growth buffer, not a copy."""
        codes = manager.codes(0, 0)
        assert codes.base is not None
        assert codes.dtype == np.uint16


class TestAccountingAndCache:
    def test_memory_footprint_compresses(self, manager):
        footprint = manager.memory_footprint()
        assert footprint["codes_bytes"] + footprint["centroid_bytes"] < footprint["raw_kv_bytes"]
        assert footprint["compression_ratio"] > 1.0

    def test_step_communication_split(self, manager):
        comm = manager.step_communication_bytes(seq_len=200, k=20)
        assert comm["overlappable"] > 0
        assert comm["blocking"] > 0

    def test_record_fetch_updates_cache(self, manager):
        result = manager.record_fetch(np.arange(32))
        assert result is not None
        manager.record_fetch(np.arange(32))
        assert manager.gpu_cache.stats.hit_rate > 0

    def test_gpu_cache_disabled(self, tiny_config, kvcache):
        mgr = PQCacheManager(tiny_config, PQCacheConfig(gpu_cache_tokens=0))
        mgr.build(kvcache, max_iters=1)
        assert mgr.gpu_cache is None
        assert mgr.record_fetch(np.arange(4)) is None


class TestIncrementalConstruction:
    """Sketch fit → stream encode → refine must match one-shot build quality."""

    CFG = PQCacheConfig(num_partitions=2, num_bits=4, max_kmeans_iters=15,
                        gpu_cache_tokens=0)

    @staticmethod
    def _reconstruction_error(mgr, kvcache, tiny_config):
        errors = []
        for layer in range(tiny_config.num_layers):
            n = mgr.num_codes(layer)
            for head in range(tiny_config.num_kv_heads):
                pq = mgr.quantizer(layer, head)
                keys = kvcache[layer].keys[head, :n, :]
                approx = pq.decode(mgr.codes(layer, head))
                errors.append(float(np.mean((approx - keys) ** 2)))
        return float(np.mean(errors))

    def _incremental(self, tiny_config, kvcache, chunk=50, sketch=100):
        mgr = PQCacheManager(tiny_config, self.CFG)
        total = len(kvcache[0])
        seen = 0
        while seen < total and not mgr.is_built:
            seen = min(seen + chunk, total)
            if seen >= min(sketch, total):
                mgr.build_incremental(kvcache, upto=seen, sample_tokens=sketch)
        while seen < total:
            stop = min(seen + chunk, total)
            for layer in range(tiny_config.num_layers):
                mgr.append_tokens(layer, kvcache[layer].keys[:, seen:stop, :])
            seen = stop
        return mgr

    def test_incremental_covers_all_tokens(self, tiny_config, kvcache):
        mgr = self._incremental(tiny_config, kvcache)
        for layer in range(tiny_config.num_layers):
            assert mgr.num_codes(layer) == len(kvcache[0])

    def test_refine_matches_one_shot_within_tolerance(self, tiny_config, kvcache):
        one_shot = PQCacheManager(tiny_config, self.CFG)
        one_shot.build(kvcache)
        incremental = self._incremental(tiny_config, kvcache)
        incremental.refine(kvcache)
        err_one_shot = self._reconstruction_error(one_shot, kvcache, tiny_config)
        err_incremental = self._reconstruction_error(
            incremental, kvcache, tiny_config
        )
        # Different K-Means local optima: quality must agree within 10%.
        assert err_incremental <= 1.10 * err_one_shot

    def test_refine_improves_streamed_codes(self, tiny_config, kvcache):
        incremental = self._incremental(tiny_config, kvcache)
        before = self._reconstruction_error(incremental, kvcache, tiny_config)
        incremental.refine(kvcache)
        after = self._reconstruction_error(incremental, kvcache, tiny_config)
        assert after <= before + 1e-12

    def test_refine_then_decode_append_keeps_alignment(self, tiny_config, kvcache, rng):
        mgr = self._incremental(tiny_config, kvcache)
        mgr.refine(kvcache)
        new = rng.normal(size=(tiny_config.num_kv_heads, 3, tiny_config.head_dim))
        mgr.append_tokens(0, new)
        assert mgr.num_codes(0) == len(kvcache[0]) + 3

    def test_sketch_sampling_is_deterministic(self, tiny_config, kvcache):
        a = PQCacheManager(tiny_config, self.CFG)
        a.build_incremental(kvcache, upto=150, sample_tokens=64)
        b = PQCacheManager(tiny_config, self.CFG)
        b.build_incremental(kvcache, upto=150, sample_tokens=64)
        assert np.array_equal(a.layer_codes(0), b.layer_codes(0))
        assert np.array_equal(a.codebooks(0), b.codebooks(0))

    def test_build_incremental_validation(self, tiny_config, kvcache):
        mgr = PQCacheManager(tiny_config, self.CFG)
        with pytest.raises(ConfigurationError):
            mgr.build_incremental(kvcache, upto=0)
        with pytest.raises(ConfigurationError):
            mgr.build_incremental(kvcache, upto=10_000)

    def test_refine_requires_built(self, tiny_config, kvcache):
        mgr = PQCacheManager(tiny_config, self.CFG)
        with pytest.raises(NotFittedError):
            mgr.refine(kvcache)
