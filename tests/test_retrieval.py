"""Tests for the stand-alone ANN retrieval library (flat / IVF / PQ indexes)."""

import numpy as np
import pytest

from repro.core import PQConfig
from repro.errors import ConfigurationError, DimensionError, NotFittedError
from repro.retrieval import FlatIndex, IVFIndex, PQIndex, recall_at_k, score_distortion


@pytest.fixture()
def vectors(rng):
    return rng.normal(size=(400, 32))


class TestFlatIndex:
    def test_exact_top1(self, vectors):
        index = FlatIndex(dim=32)
        index.add(vectors)
        query = vectors[17] * 2.0
        ids, scores = index.search(query, k=1)
        assert ids[0] == 17
        assert index.size == 400

    def test_matches_argsort(self, vectors, rng):
        index = FlatIndex(dim=32)
        index.add(vectors)
        query = rng.normal(size=32)
        ids, _ = index.search(query, k=10)
        expected = np.argsort(-(vectors @ query))[:10]
        assert list(ids) == list(expected)

    def test_incremental_add(self, vectors):
        index = FlatIndex(dim=32)
        index.add(vectors[:100])
        index.add(vectors[100:])
        assert index.size == 400

    def test_errors(self, vectors):
        index = FlatIndex(dim=32)
        with pytest.raises(NotFittedError):
            index.search(np.zeros(32), 1)
        index.add(vectors)
        with pytest.raises(DimensionError):
            index.search(np.zeros(16), 1)
        with pytest.raises(DimensionError):
            FlatIndex(dim=0)


class TestPQIndex:
    def test_recall_against_flat(self, vectors, rng):
        flat = FlatIndex(dim=32)
        flat.add(vectors)
        pq = PQIndex(PQConfig(dim=32, num_partitions=4, num_bits=6, seed=0))
        pq.train(vectors)
        query = rng.normal(size=32)
        exact_ids, exact_scores = flat.search(query, k=20)
        approx_ids, approx_scores = pq.search(query, k=20)
        assert recall_at_k(approx_ids, exact_ids) >= 0.3
        assert score_distortion(approx_scores, exact_scores) < 1.0

    def test_add_after_train(self, vectors, rng):
        pq = PQIndex(PQConfig(dim=32, num_partitions=2, num_bits=4, seed=0))
        pq.train(vectors[:200])
        pq.add(vectors[200:])
        assert pq.size == 400

    def test_add_before_train_rejected(self, vectors):
        pq = PQIndex(PQConfig(dim=32, num_partitions=2, num_bits=4))
        with pytest.raises(NotFittedError):
            pq.add(vectors)

    def test_memory_smaller_than_raw(self, vectors):
        pq = PQIndex(PQConfig(dim=32, num_partitions=2, num_bits=4, seed=0))
        pq.train(vectors)
        mem = pq.memory_bytes()
        assert mem["codes_bytes"] < mem["raw_bytes"]

    def test_empty_search_rejected(self):
        pq = PQIndex(PQConfig(dim=32, num_partitions=2, num_bits=4))
        with pytest.raises(NotFittedError):
            pq.search(np.zeros(32), 1)


class TestIVFIndex:
    def test_probing_all_lists_is_exact(self, vectors, rng):
        ivf = IVFIndex(dim=32, n_lists=8, n_probe=8, seed=0)
        ivf.train(vectors)
        flat = FlatIndex(dim=32)
        flat.add(vectors)
        query = rng.normal(size=32)
        exact_ids, _ = flat.search(query, k=10)
        ivf_ids, _ = ivf.search(query, k=10)
        assert recall_at_k(ivf_ids, exact_ids) == 1.0

    def test_fewer_probes_lower_or_equal_recall(self, vectors, rng):
        query = rng.normal(size=32)
        flat = FlatIndex(dim=32)
        flat.add(vectors)
        exact_ids, _ = flat.search(query, k=10)
        recalls = []
        for n_probe in (1, 4, 8):
            ivf = IVFIndex(dim=32, n_lists=8, n_probe=n_probe, seed=0)
            ivf.train(vectors)
            ids, _ = ivf.search(query, k=10)
            recalls.append(recall_at_k(ids, exact_ids))
        assert recalls[0] <= recalls[-1]

    def test_add_assigns_new_ids(self, vectors, rng):
        ivf = IVFIndex(dim=32, n_lists=4, n_probe=4, seed=0)
        ivf.train(vectors[:300])
        ivf.add(vectors[300:])
        assert ivf.size == 400
        big = vectors[350] * 100
        ivf.add(big[None, :])
        ids, _ = ivf.search(vectors[350], k=1)
        assert ids[0] == 400

    def test_errors(self, vectors):
        with pytest.raises(ConfigurationError):
            IVFIndex(dim=32, n_lists=0)
        ivf = IVFIndex(dim=32, n_lists=4)
        with pytest.raises(NotFittedError):
            ivf.search(np.zeros(32), 1)
        with pytest.raises(NotFittedError):
            ivf.add(vectors)


class TestMetrics:
    def test_recall_bounds(self):
        assert recall_at_k(np.array([1, 2, 3]), np.array([1, 2, 3])) == 1.0
        assert recall_at_k(np.array([4, 5, 6]), np.array([1, 2, 3])) == 0.0
        assert recall_at_k(np.array([]), np.array([])) == 1.0

    def test_distortion_zero_for_identical(self):
        scores = np.array([1.0, 2.0, 3.0])
        assert score_distortion(scores, scores) == 0.0
