"""Tests for the selective-attention policies (base machinery + baselines)."""

import numpy as np
import pytest

from repro.baselines import (
    FullAttentionPolicy,
    H2OPolicy,
    InfLLMPolicy,
    OracleTopKPolicy,
    PQCachePolicy,
    POLICY_NAMES,
    PyramidKVPolicy,
    SelectionBudget,
    SnapKVPolicy,
    SparqPolicy,
    StreamingLLMPolicy,
    build_policy,
    default_policy_suite,
)
from repro.core import PQCacheConfig
from repro.errors import ConfigurationError
from repro.eval import clone_prefill


@pytest.fixture()
def decode_query(tiny_config, rng):
    return rng.normal(size=(tiny_config.num_heads, tiny_config.head_dim))


def _prepare(policy, tiny_config, prefill):
    """Give the policy its own cache copy and run on_prefill."""
    owned = clone_prefill(prefill, tiny_config)
    policy.on_prefill(tiny_config, owned)
    return owned


class TestSelectionBudget:
    def test_total_and_middle(self):
        budget = SelectionBudget(token_ratio=0.2, num_initial=4, num_local=16)
        assert budget.total_tokens(1000) == 200
        assert budget.middle_budget(1000) == 180

    def test_min_middle_floor(self):
        budget = SelectionBudget(token_ratio=0.1, num_initial=8, num_local=64,
                                 min_middle=4)
        assert budget.middle_budget(100) == 4

    def test_invalid_ratios(self):
        with pytest.raises(ConfigurationError):
            SelectionBudget(token_ratio=0.0)
        with pytest.raises(ConfigurationError):
            SelectionBudget(comm_ratio=2.0)

    def test_segments(self):
        budget = SelectionBudget(num_initial=2, num_local=8)
        seg = budget.segments(100)
        assert seg.initial_indices.size == 2
        assert seg.local_indices.size == 8


class TestCommonBehaviour:
    """Properties every policy in the suite must satisfy."""

    @pytest.fixture(params=sorted(set(POLICY_NAMES) - {"full"}))
    def policy(self, request, budget):
        return build_policy(request.param, budget)

    def test_selection_respects_budget_and_bounds(self, policy, tiny_config,
                                                  prefill, decode_query):
        _prepare(policy, tiny_config, prefill)
        owned = policy  # policy now holds per-layer state
        cloned = clone_prefill(prefill, tiny_config)
        # re-prepare on the clone we will query against
        policy.on_prefill(tiny_config, cloned)
        selected = policy.select(0, decode_query, cloned.kvcache)
        assert isinstance(selected, list)
        assert len(selected) == tiny_config.num_kv_heads
        seq_len = cloned.kvcache.seq_len
        segments = policy.budget.segments(seq_len)
        allowed_non_middle = segments.initial_indices.size + segments.local_indices.size
        budget_middle = policy.budget.middle_budget(policy.prompt_len)
        for per_head in selected:
            assert per_head.min() >= 0
            assert per_head.max() < seq_len
            assert np.unique(per_head).size == per_head.size
            # dropping methods may retain a compensated (larger) budget, but
            # never more than twice the base plus the reserved segments.
            assert per_head.size <= 2 * budget_middle + allowed_non_middle + 8

    def test_select_before_prefill_raises(self, policy, decode_query, prefill,
                                          tiny_config):
        cloned = clone_prefill(prefill, tiny_config)
        with pytest.raises(Exception):
            policy.select(0, decode_query, cloned.kvcache)

    def test_describe_contains_name(self, policy):
        info = policy.describe()
        assert info["name"] == policy.name
        assert "token_ratio" in info


class TestFullAndOracle:
    def test_full_returns_none(self, budget, tiny_config, prefill, decode_query):
        policy = FullAttentionPolicy(budget)
        cloned = _prepare(policy, tiny_config, prefill)
        assert policy.select(0, decode_query, cloned.kvcache) is None

    def test_oracle_selects_exact_topk(self, budget, tiny_config, prefill, rng):
        policy = OracleTopKPolicy(budget)
        cloned = _prepare(policy, tiny_config, prefill)
        layer_cache = cloned.kvcache[0]
        query = rng.normal(size=(tiny_config.num_heads, tiny_config.head_dim))
        selected = policy.select(0, query, cloned.kvcache)
        segments = budget.segments(len(layer_cache))
        k = budget.middle_budget(policy.prompt_len)
        kv_query = query.reshape(tiny_config.num_kv_heads, -1,
                                 tiny_config.head_dim).mean(axis=1)
        for head in range(tiny_config.num_kv_heads):
            middle = segments.middle_indices
            scores = layer_cache.keys[head, middle, :] @ kv_query[head]
            expected = set(middle[np.argsort(-scores)[:k]].tolist())
            chosen_middle = set(selected[head].tolist()) & set(middle.tolist())
            assert chosen_middle == expected


class TestDroppingPolicies:
    def test_streaming_keeps_only_sink_and_local(self, budget, tiny_config, prefill,
                                                 decode_query):
        policy = StreamingLLMPolicy(budget)
        cloned = _prepare(policy, tiny_config, prefill)
        selected = policy.select(0, decode_query, cloned.kvcache)
        segments = budget.segments(cloned.kvcache.seq_len)
        expected = set(segments.initial_indices.tolist()) | set(
            segments.local_indices.tolist()
        )
        for per_head in selected:
            assert set(per_head.tolist()) == expected

    def test_h2o_selection_is_static_per_layer(self, budget, tiny_config, prefill,
                                               decode_query, rng):
        policy = H2OPolicy(budget, compensated=False)
        cloned = _prepare(policy, tiny_config, prefill)
        first = policy.select(0, decode_query, cloned.kvcache)
        other_query = rng.normal(size=decode_query.shape)
        second = policy.select(0, other_query, cloned.kvcache)
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_h2o_compensation_increases_budget(self, tiny_config, prefill, decode_query):
        budget = SelectionBudget(token_ratio=0.1, comm_ratio=1 / 16, num_initial=2,
                                 num_local=8)
        plain = H2OPolicy(budget, compensated=False)
        comp = H2OPolicy(budget, compensated=True)
        c1 = _prepare(plain, tiny_config, prefill)
        c2 = _prepare(comp, tiny_config, prefill)
        plain_sel = plain.select(0, decode_query, c1.kvcache)
        comp_sel = comp.select(0, decode_query, c2.kvcache)
        assert comp_sel[0].size >= plain_sel[0].size

    def test_h2o_decode_update_keeps_budget(self, budget, tiny_config, prefill,
                                            decode_query, model):
        policy = H2OPolicy(budget)
        cloned = _prepare(policy, tiny_config, prefill)
        k = policy.budget.middle_budget(policy.prompt_len)
        for _ in range(3):
            model.decode_step(9, cloned.kvcache,
                              lambda layer, q, c: policy.select(layer, q, c))
            policy.on_decode_step(cloned.kvcache)
        for layer in range(tiny_config.num_layers):
            for head in range(tiny_config.num_kv_heads):
                retained = policy._retained[layer][head]
                assert retained.size <= k + int(
                    round(policy.prompt_len * budget.comm_ratio / 2)
                ) + 1

    def test_snapkv_prefers_window_heavy_tokens(self, budget, tiny_config, prefill,
                                                decode_query):
        policy = SnapKVPolicy(budget, compensated=False, pool_size=1)
        cloned = _prepare(policy, tiny_config, prefill)
        selected = policy.select(0, decode_query, cloned.kvcache)
        segments = budget.segments(cloned.kvcache.seq_len)
        middle = segments.middle_indices
        window = prefill.aggregates[0].window_scores[0, middle]
        k = budget.middle_budget(policy.prompt_len)
        expected = set(middle[np.argsort(-window)[:k]].tolist())
        chosen_middle = set(selected[0].tolist()) & set(middle.tolist())
        assert chosen_middle == expected

    def test_snapkv_pool_size_validation(self, budget):
        with pytest.raises(ConfigurationError):
            SnapKVPolicy(budget, pool_size=2)

    def test_pyramidkv_budgets_decay_with_depth(self, budget, tiny_config, prefill,
                                                decode_query):
        policy = PyramidKVPolicy(budget, compensated=False, decay=2.0)
        cloned = _prepare(policy, tiny_config, prefill)
        first = policy.select(0, decode_query, cloned.kvcache)
        last = policy.select(tiny_config.num_layers - 1, decode_query, cloned.kvcache)
        assert first[0].size >= last[0].size

    def test_pyramidkv_decay_validation(self, budget):
        with pytest.raises(ConfigurationError):
            PyramidKVPolicy(budget, decay=0.5)

    def test_dropping_policies_report_zero_communication(self, budget, tiny_config,
                                                         prefill):
        for cls in (H2OPolicy, SnapKVPolicy, PyramidKVPolicy, StreamingLLMPolicy):
            policy = cls(budget)
            _prepare(policy, tiny_config, prefill)
            comm = policy.step_communication_bytes(1000)
            assert comm["blocking"] == 0.0
            assert comm["overlappable"] == 0.0


class TestOffloadingPolicies:
    def test_sparq_rank_derived_from_comm_ratio(self, tiny_config, prefill,
                                                decode_query):
        budget = SelectionBudget(comm_ratio=1 / 8)
        policy = SparqPolicy(budget)
        cloned = _prepare(policy, tiny_config, prefill)
        assert policy._effective_rank() == max(int(round(tiny_config.head_dim / 8)), 1)
        selected = policy.select(0, decode_query, cloned.kvcache)
        assert len(selected) == tiny_config.num_kv_heads

    def test_sparq_more_dims_improves_agreement_with_oracle(self, tiny_config,
                                                            prefill, decode_query,
                                                            budget):
        oracle = OracleTopKPolicy(budget)
        c0 = _prepare(oracle, tiny_config, prefill)
        oracle_sel = oracle.select(0, decode_query, c0.kvcache)

        def overlap(rank):
            policy = SparqPolicy(budget, rank=rank)
            cloned = _prepare(policy, tiny_config, prefill)
            sel = policy.select(0, decode_query, cloned.kvcache)
            return np.mean([
                len(set(a.tolist()) & set(b.tolist())) / max(len(b), 1)
                for a, b in zip(sel, oracle_sel)
            ])

        assert overlap(tiny_config.head_dim) >= overlap(1) - 1e-9

    def test_sparq_communication_scales_with_sequence(self, budget, tiny_config,
                                                      prefill):
        policy = SparqPolicy(budget)
        _prepare(policy, tiny_config, prefill)
        short = policy.step_communication_bytes(1000)["blocking"]
        long = policy.step_communication_bytes(10000)["blocking"]
        assert long > short

    def test_infllm_selects_whole_blocks(self, tiny_config, prefill, decode_query):
        budget = SelectionBudget(token_ratio=0.3, num_initial=4, num_local=16)
        policy = InfLLMPolicy(budget, block_size=16)
        cloned = _prepare(policy, tiny_config, prefill)
        selected = policy.select(0, decode_query, cloned.kvcache)
        segments = budget.segments(cloned.kvcache.seq_len)
        middle = set(segments.middle_indices.tolist())
        chosen_middle = sorted(set(selected[0].tolist()) & middle)
        assert chosen_middle, "InfLLM should select some middle tokens"
        # Block-level fetching means the chosen middle tokens form only a few
        # contiguous runs (one per fetched block), not scattered singletons.
        runs = 1 + sum(
            1 for a, b in zip(chosen_middle, chosen_middle[1:]) if b != a + 1
        )
        max_blocks = int(np.ceil(budget.middle_budget(policy.prompt_len) / 16)) + 1
        assert runs <= max_blocks

    def test_infllm_block_size_validation(self, budget):
        with pytest.raises(ConfigurationError):
            InfLLMPolicy(budget, block_size=0)

    def test_infllm_communication_split(self, budget, tiny_config, prefill):
        policy = InfLLMPolicy(budget)
        _prepare(policy, tiny_config, prefill)
        comm = policy.step_communication_bytes(2000)
        assert comm["overlappable"] > 0
        assert comm["blocking"] > 0


class TestPQCachePolicy:
    def test_builds_manager_on_prefill(self, budget, tiny_config, prefill):
        policy = PQCachePolicy(budget, pq_config=PQCacheConfig(num_bits=4,
                                                               max_kmeans_iters=4))
        _prepare(policy, tiny_config, prefill)
        assert policy.manager is not None
        assert policy.manager.is_built

    def test_selection_close_to_oracle(self, tiny_config, prefill, decode_query):
        budget = SelectionBudget(token_ratio=0.3, num_initial=4, num_local=16)
        oracle = OracleTopKPolicy(budget)
        pqc = PQCachePolicy(budget, pq_config=PQCacheConfig(num_partitions=4,
                                                            num_bits=6,
                                                            max_kmeans_iters=15,
                                                            gpu_cache_tokens=0))
        c0 = _prepare(oracle, tiny_config, prefill)
        c1 = _prepare(pqc, tiny_config, prefill)
        oracle_sel = oracle.select(0, decode_query, c0.kvcache)
        pq_sel = pqc.select(0, decode_query, c1.kvcache)
        overlaps = [
            len(set(a.tolist()) & set(b.tolist())) / max(len(b), 1)
            for a, b in zip(pq_sel, oracle_sel)
        ]
        assert np.mean(overlaps) > 0.5

    def test_decode_step_encodes_evicted_tokens(self, tiny_config, prefill, model):
        # Small local window so generated tokens leave it (and must be PQ
        # encoded) after only a few decode steps.
        budget = SelectionBudget(token_ratio=0.2, num_initial=4, num_local=4)
        policy = PQCachePolicy(budget, pq_config=PQCacheConfig(num_bits=4,
                                                               max_kmeans_iters=2,
                                                               gpu_cache_tokens=0))
        cloned = _prepare(policy, tiny_config, prefill)
        before = policy.manager.num_codes(0)
        steps = 6
        for _ in range(steps):
            model.decode_step(11, cloned.kvcache,
                              lambda layer, q, c: policy.select(layer, q, c))
            policy.on_decode_step(cloned.kvcache)
        # After `steps` steps the middle segment ends at prompt_len + steps -
        # num_local, so exactly (steps - num_local) new tokens were encoded.
        assert policy.manager.num_codes(0) == before + steps - budget.num_local

    def test_gpu_cache_records_traffic(self, budget, tiny_config, prefill,
                                       decode_query):
        policy = PQCachePolicy(budget, pq_config=PQCacheConfig(num_bits=4,
                                                               max_kmeans_iters=2,
                                                               gpu_cache_tokens=256))
        cloned = _prepare(policy, tiny_config, prefill)
        policy.select(0, decode_query, cloned.kvcache)
        assert policy.manager.gpu_cache.stats.lookups == 1

    def test_communication_reports_pq_codes(self, budget, tiny_config, prefill):
        policy = PQCachePolicy(budget)
        _prepare(policy, tiny_config, prefill)
        comm = policy.step_communication_bytes(2000)
        assert comm["overlappable"] > 0
        assert comm["blocking"] > 0

    def test_blocking_bytes_use_per_step_hit_rate(self, budget, tiny_config,
                                                  prefill, decode_query):
        """Regression: blocking bytes were scaled by the *cumulative* hit
        rate, so a cold first step leaked into every later estimate (and
        vice versa).  They must follow the current step's hit/miss split,
        aggregated over every layer's retrieval of that step (a layer-0
        select opens a new step)."""
        policy = PQCachePolicy(budget, pq_config=PQCacheConfig(num_bits=4,
                                                               max_kmeans_iters=2,
                                                               gpu_cache_tokens=4096))
        cloned = _prepare(policy, tiny_config, prefill)
        seq_len = cloned.kvcache.seq_len
        unscaled = policy.manager.step_communication_bytes(
            seq_len, budget.middle_budget(policy.prompt_len))["blocking"]

        # Step 1: layer 0 is cold (all misses), layer 1 re-fetches the same
        # working set and mostly hits — the step rate aggregates both.
        policy.select(0, decode_query, cloned.kvcache)
        after_layer0 = policy.manager.gpu_cache.stats.step_hit_rate
        assert after_layer0 == 0.0
        policy.select(1, decode_query, cloned.kvcache)
        step1_rate = policy.manager.gpu_cache.stats.step_hit_rate
        assert 0.0 < step1_rate < 1.0
        step1 = policy.step_communication_bytes(seq_len)["blocking"]
        assert step1 == pytest.approx(unscaled * (1.0 - step1_rate))

        # Step 2: layer 0 resets the step counters; everything now hits, so
        # blocking traffic drops to zero even though the cumulative rate
        # (kept for reporting) remembers step 1's misses.
        policy.select(0, decode_query, cloned.kvcache)
        policy.select(1, decode_query, cloned.kvcache)
        warm = policy.step_communication_bytes(seq_len)["blocking"]
        assert warm == 0.0
        assert 0.0 < policy.manager.gpu_cache.stats.hit_rate < 1.0

    def test_describe_includes_pq_settings(self, budget):
        policy = PQCachePolicy(budget, pq_config=PQCacheConfig(num_partitions=4,
                                                               num_bits=8))
        info = policy.describe()
        assert info["pq_partitions"] == 4
        assert info["pq_bits"] == 8


class TestRegistry:
    def test_all_names_buildable(self, budget):
        for name in POLICY_NAMES:
            policy = build_policy(name, budget)
            assert policy.budget is budget

    def test_unknown_name(self, budget):
        with pytest.raises(ConfigurationError):
            build_policy("does-not-exist", budget)

    def test_default_suite_composition(self, budget):
        suite = default_policy_suite(budget)
        assert list(suite) == ["full", "oracle", "h2o(c)", "snapkv(c)",
                               "pyramidkv(c)", "infllm", "sparq", "pqcache"]

    def test_suite_without_references(self, budget):
        suite = default_policy_suite(budget, include_full=False, include_oracle=False)
        assert "full" not in suite and "oracle" not in suite
