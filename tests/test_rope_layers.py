"""Tests for RoPE and the primitive layers (RMSNorm, Linear, SwiGLU)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError
from repro.llm.layers import Linear, RMSNorm, SwiGLU, rms_norm, silu
from repro.llm.rope import apply_rope, rope_frequencies, rotate_half


class TestRope:
    def test_preserves_norm(self, rng):
        vectors = rng.normal(size=(2, 10, 16))
        rotated = apply_rope(vectors, np.arange(10))
        assert np.allclose(np.linalg.norm(rotated, axis=-1),
                           np.linalg.norm(vectors, axis=-1))

    def test_position_zero_is_identity(self, rng):
        vectors = rng.normal(size=(1, 1, 8))
        rotated = apply_rope(vectors, np.array([0]))
        assert np.allclose(rotated, vectors)

    def test_relative_position_invariance(self, rng):
        """The inner product of a rotated query/key pair depends only on the
        relative offset between their positions (the core RoPE property)."""
        q = rng.normal(size=(1, 1, 32))
        k = rng.normal(size=(1, 1, 32))
        def scored(pos_q, pos_k):
            rq = apply_rope(q, np.array([pos_q]))[0, 0]
            rk = apply_rope(k, np.array([pos_k]))[0, 0]
            return float(rq @ rk)
        assert scored(5, 3) == pytest.approx(scored(105, 103), rel=1e-9)
        assert scored(7, 0) == pytest.approx(scored(1007, 1000), rel=1e-9)

    def test_odd_head_dim_rejected(self):
        with pytest.raises(DimensionError):
            rope_frequencies(7, np.arange(3))

    def test_position_length_mismatch(self, rng):
        with pytest.raises(DimensionError):
            apply_rope(rng.normal(size=(1, 5, 8)), np.arange(3))

    def test_rotate_half(self):
        x = np.array([[1.0, 2.0, 3.0, 4.0]])
        assert np.allclose(rotate_half(x), [[-3.0, -4.0, 1.0, 2.0]])

    def test_larger_base_rotates_less(self, rng):
        vec = rng.normal(size=(1, 1, 16))
        default = apply_rope(vec, np.array([50]), base=1e4)
        weak = apply_rope(vec, np.array([50]), base=1e8)
        assert np.linalg.norm(weak - vec) < np.linalg.norm(default - vec)


class TestRMSNorm:
    def test_unit_scale_output(self, rng):
        x = rng.normal(size=(4, 16)) * 100.0
        normed = rms_norm(x, np.ones(16))
        rms = np.sqrt(np.mean(normed ** 2, axis=-1))
        assert np.allclose(rms, 1.0, atol=1e-3)

    def test_module_matches_function(self, rng):
        norm = RMSNorm.init(8, rng)
        x = rng.normal(size=(3, 8))
        assert np.allclose(norm(x), rms_norm(x, norm.weight))

    def test_parameter_count(self, rng):
        assert RMSNorm.init(32, rng).num_parameters == 32


class TestLinear:
    def test_shape(self, rng):
        layer = Linear.init(8, 16, rng)
        assert layer(rng.normal(size=(5, 8))).shape == (5, 16)

    def test_dim_check(self, rng):
        layer = Linear.init(8, 16, rng)
        with pytest.raises(DimensionError):
            layer(rng.normal(size=(5, 9)))

    def test_parameter_count(self, rng):
        assert Linear.init(8, 16, rng).num_parameters == 128

    @given(st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_linearity(self, rows, cols):
        rng = np.random.default_rng(rows * 10 + cols)
        layer = Linear.init(cols, 4, rng)
        a = rng.normal(size=(rows, cols))
        b = rng.normal(size=(rows, cols))
        assert np.allclose(layer(a + b), layer(a) + layer(b))


class TestSwiGLU:
    def test_shape_preserved(self, rng):
        ffn = SwiGLU.init(16, 32, rng)
        assert ffn(rng.normal(size=(4, 16))).shape == (4, 16)

    def test_silu_properties(self):
        assert silu(np.array([0.0]))[0] == 0.0
        assert silu(np.array([100.0]))[0] == pytest.approx(100.0)
        assert abs(silu(np.array([-100.0]))[0]) < 1e-6

    def test_parameter_count(self, rng):
        ffn = SwiGLU.init(8, 16, rng)
        assert ffn.num_parameters == 3 * 8 * 16
