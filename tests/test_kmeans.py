"""Tests for the K-Means implementation used by PQ codebook training."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kmeans import (
    _converged,
    _reseed_targets,
    kmeans_assign,
    kmeans_fit,
    kmeans_plus_plus_init,
    kmeans_refine,
)
from repro.errors import ConfigurationError, DimensionError


def _blobs(rng, centers, points_per_center=30, scale=0.05):
    data = []
    for center in centers:
        data.append(center + scale * rng.normal(size=(points_per_center, len(center))))
    return np.concatenate(data, axis=0)


class TestKMeansFit:
    def test_recovers_well_separated_clusters(self, rng):
        centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0], [10.0, -10.0]])
        points = _blobs(rng, centers)
        result = kmeans_fit(points, n_clusters=4, max_iter=50, seed=1)
        # Every true centre should have a learned centroid nearby.
        for center in centers:
            dists = np.linalg.norm(result.centroids - center, axis=1)
            assert dists.min() < 1.0

    def test_labels_match_nearest_centroid(self, rng):
        points = rng.normal(size=(100, 4))
        result = kmeans_fit(points, n_clusters=8, max_iter=20, seed=0)
        reassigned = kmeans_assign(points, result.centroids)
        assert np.array_equal(reassigned, result.labels)

    def test_inertia_decreases_with_more_iterations(self, rng):
        points = rng.normal(size=(200, 8))
        few = kmeans_fit(points, n_clusters=16, max_iter=1, seed=0)
        many = kmeans_fit(points, n_clusters=16, max_iter=30, seed=0)
        assert many.inertia <= few.inertia + 1e-9

    def test_zero_iterations_returns_seeding(self, rng):
        points = rng.normal(size=(50, 3))
        result = kmeans_fit(points, n_clusters=4, max_iter=0, seed=0)
        assert result.n_iter == 0
        assert result.converged
        assert result.centroids.shape == (4, 3)

    def test_fewer_points_than_clusters(self, rng):
        points = rng.normal(size=(3, 5))
        result = kmeans_fit(points, n_clusters=8, max_iter=10, seed=0)
        assert result.centroids.shape == (8, 5)
        assert result.labels.shape == (3,)
        assert result.labels.max() < 8

    def test_deterministic_for_seed(self, rng):
        points = rng.normal(size=(80, 4))
        a = kmeans_fit(points, n_clusters=8, max_iter=15, seed=42)
        b = kmeans_fit(points, n_clusters=8, max_iter=15, seed=42)
        assert np.allclose(a.centroids, b.centroids)
        assert np.array_equal(a.labels, b.labels)

    def test_identical_points_do_not_crash(self):
        points = np.ones((40, 4))
        result = kmeans_fit(points, n_clusters=4, max_iter=10, seed=0)
        assert np.allclose(result.centroids, 1.0)
        assert result.inertia == pytest.approx(0.0)

    def test_invalid_arguments(self, rng):
        points = rng.normal(size=(10, 2))
        with pytest.raises(ConfigurationError):
            kmeans_fit(points, n_clusters=0)
        with pytest.raises(ConfigurationError):
            kmeans_fit(points, n_clusters=2, max_iter=-1)

    def test_result_properties(self, rng):
        points = rng.normal(size=(64, 6))
        result = kmeans_fit(points, n_clusters=8, max_iter=5, seed=0)
        assert result.n_clusters == 8
        assert result.dim == 6

    @given(st.integers(2, 6), st.integers(20, 60))
    @settings(max_examples=15, deadline=None)
    def test_every_point_gets_valid_label(self, n_clusters, n_points):
        rng = np.random.default_rng(n_clusters * 100 + n_points)
        points = rng.normal(size=(n_points, 3))
        result = kmeans_fit(points, n_clusters=n_clusters, max_iter=10, seed=0)
        assert result.labels.shape == (n_points,)
        assert result.labels.min() >= 0
        assert result.labels.max() < n_clusters


class TestConvergenceRule:
    """Regression: a *negative* inertia improvement (possible right after
    empty-cluster reseeding) used to satisfy ``improved <= tol * inertia``
    and trigger a spurious ``converged=True`` exit."""

    def test_negative_improvement_is_not_convergence(self):
        assert not _converged(
            labels_stable=False, improved=-1.0, inertia=100.0, tol=1e-6
        )

    def test_small_nonnegative_improvement_converges(self):
        assert _converged(
            labels_stable=False, improved=0.0, inertia=100.0, tol=1e-6
        )
        assert _converged(
            labels_stable=False, improved=5e-5, inertia=100.0, tol=1e-6
        )

    def test_large_improvement_keeps_iterating(self):
        assert not _converged(
            labels_stable=False, improved=10.0, inertia=100.0, tol=1e-6
        )

    def test_stable_labels_always_converge(self):
        assert _converged(
            labels_stable=True, improved=-1.0, inertia=100.0, tol=1e-6
        )


class TestEmptyClusterReseeding:
    def test_targets_use_updated_centroids(self):
        """The reseed candidates must be ranked by distance to the *updated*
        centroids: a point whose (old-position) centroid moved next to it is
        no longer worst-represented and must not be picked."""
        points = np.array([[0.0, 0.0], [10.0, 0.0], [0.2, 0.0]])
        # Updated centroid 0 sits on top of point 1 — the point that *was*
        # far from centroid 0's old position at the origin.
        centroids = np.array([[10.0, 0.0], [99.0, 99.0]])
        labels = np.array([0, 0, 0])
        worst = _reseed_targets(points, centroids, labels, num_empty=1)
        # Against the updated centroid, point 0 (distance 10) is worst, not
        # point 1 (distance 0, despite being far from the old origin).
        assert list(worst) == [0]

    def test_targets_are_distinct_points_in_distance_order(self):
        points = np.array([[0.0], [1.0], [4.0], [9.0]])
        centroids = np.array([[0.0]])
        labels = np.zeros(4, dtype=np.int64)
        worst = _reseed_targets(points, centroids, labels, num_empty=3)
        assert list(worst) == [3, 2, 1]

    def test_fit_with_forced_empty_clusters_stays_valid(self, rng):
        """Duplicate-heavy data forces empty clusters during Lloyd; the run
        must stay internally consistent and labels must match the returned
        centroids."""
        base = rng.normal(size=(3, 4))
        points = np.vstack([
            base[rng.integers(0, 3, size=60)] + 1e-4 * rng.normal(size=(60, 4)),
            50.0 * rng.normal(size=(2, 4)),
        ])
        result = kmeans_fit(points, n_clusters=16, max_iter=25, seed=7)
        assert result.labels.min() >= 0
        assert result.labels.max() < 16
        assert np.array_equal(
            result.labels, kmeans_assign(points, result.centroids)
        )
        assert np.isfinite(result.inertia)


class TestKMeansPlusPlus:
    def test_centroids_are_input_points(self, rng):
        points = rng.normal(size=(30, 4))
        centroids = kmeans_plus_plus_init(points, 5, rng)
        for centroid in centroids:
            assert np.any(np.all(np.isclose(points, centroid), axis=1))

    def test_handles_duplicate_points(self, rng):
        points = np.zeros((10, 2))
        centroids = kmeans_plus_plus_init(points, 4, rng)
        assert centroids.shape == (4, 2)


class TestKMeansAssign:
    def test_assigns_to_nearest(self):
        centroids = np.array([[0.0, 0.0], [10.0, 0.0]])
        points = np.array([[1.0, 0.0], [9.0, 0.5]])
        assert list(kmeans_assign(points, centroids)) == [0, 1]


class TestKMeansRefine:
    """Incremental construction: warm-started Lloyd over the full point set."""

    def test_refine_improves_sketch_fit(self, rng):
        points = rng.normal(size=(400, 6))
        sketch = points[rng.choice(400, size=60, replace=False)]
        sketch_fit = kmeans_fit(sketch, n_clusters=16, max_iter=20, seed=0)
        before = kmeans_assign(points, sketch_fit.centroids)
        diffs = points - sketch_fit.centroids[before]
        inertia_before = float(np.einsum("ij,ij->i", diffs, diffs).sum())
        refined = kmeans_refine(points, sketch_fit.centroids, max_iter=20)
        assert refined.inertia <= inertia_before + 1e-9

    def test_refine_reaches_one_shot_quality(self, rng):
        points = rng.normal(size=(500, 8))
        one_shot = kmeans_fit(points, n_clusters=32, max_iter=30, seed=0)
        sketch = points[::4]
        sketch_fit = kmeans_fit(sketch, n_clusters=32, max_iter=30, seed=0)
        refined = kmeans_refine(points, sketch_fit.centroids, max_iter=30)
        # Both land in local optima; quality must match within tolerance.
        assert refined.inertia <= 1.10 * one_shot.inertia

    def test_zero_iterations_keeps_centroids(self, rng):
        points = rng.normal(size=(50, 3))
        centroids = rng.normal(size=(4, 3))
        result = kmeans_refine(points, centroids, max_iter=0)
        assert np.array_equal(result.centroids, centroids)
        assert result.converged and result.n_iter == 0
        assert np.array_equal(result.labels, kmeans_assign(points, centroids))

    def test_does_not_mutate_input_centroids(self, rng):
        points = rng.normal(size=(80, 3))
        centroids = rng.normal(size=(8, 3))
        frozen = centroids.copy()
        kmeans_refine(points, centroids, max_iter=10)
        assert np.array_equal(centroids, frozen)

    def test_fewer_points_than_empty_clusters_is_safe(self, rng):
        # Two identical points, many far-away centroids: most clusters end up
        # empty and there are fewer reseed candidates than empty slots.
        points = np.zeros((2, 3))
        centroids = 100.0 + rng.normal(size=(8, 3))
        result = kmeans_refine(points, centroids, max_iter=5)
        assert result.labels.shape == (2,)

    def test_validation(self, rng):
        points = rng.normal(size=(10, 3))
        with pytest.raises(ConfigurationError):
            kmeans_refine(points, rng.normal(size=(4, 2)))  # dim mismatch
        with pytest.raises(DimensionError):
            kmeans_refine(points[:0], rng.normal(size=(4, 3)))  # no points
        with pytest.raises(ConfigurationError):
            kmeans_refine(points, rng.normal(size=(4, 3)), max_iter=-1)
