"""Tests for the K-Means implementation used by PQ codebook training."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kmeans import kmeans_assign, kmeans_fit, kmeans_plus_plus_init
from repro.errors import ConfigurationError


def _blobs(rng, centers, points_per_center=30, scale=0.05):
    data = []
    for center in centers:
        data.append(center + scale * rng.normal(size=(points_per_center, len(center))))
    return np.concatenate(data, axis=0)


class TestKMeansFit:
    def test_recovers_well_separated_clusters(self, rng):
        centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0], [10.0, -10.0]])
        points = _blobs(rng, centers)
        result = kmeans_fit(points, n_clusters=4, max_iter=50, seed=1)
        # Every true centre should have a learned centroid nearby.
        for center in centers:
            dists = np.linalg.norm(result.centroids - center, axis=1)
            assert dists.min() < 1.0

    def test_labels_match_nearest_centroid(self, rng):
        points = rng.normal(size=(100, 4))
        result = kmeans_fit(points, n_clusters=8, max_iter=20, seed=0)
        reassigned = kmeans_assign(points, result.centroids)
        assert np.array_equal(reassigned, result.labels)

    def test_inertia_decreases_with_more_iterations(self, rng):
        points = rng.normal(size=(200, 8))
        few = kmeans_fit(points, n_clusters=16, max_iter=1, seed=0)
        many = kmeans_fit(points, n_clusters=16, max_iter=30, seed=0)
        assert many.inertia <= few.inertia + 1e-9

    def test_zero_iterations_returns_seeding(self, rng):
        points = rng.normal(size=(50, 3))
        result = kmeans_fit(points, n_clusters=4, max_iter=0, seed=0)
        assert result.n_iter == 0
        assert result.converged
        assert result.centroids.shape == (4, 3)

    def test_fewer_points_than_clusters(self, rng):
        points = rng.normal(size=(3, 5))
        result = kmeans_fit(points, n_clusters=8, max_iter=10, seed=0)
        assert result.centroids.shape == (8, 5)
        assert result.labels.shape == (3,)
        assert result.labels.max() < 8

    def test_deterministic_for_seed(self, rng):
        points = rng.normal(size=(80, 4))
        a = kmeans_fit(points, n_clusters=8, max_iter=15, seed=42)
        b = kmeans_fit(points, n_clusters=8, max_iter=15, seed=42)
        assert np.allclose(a.centroids, b.centroids)
        assert np.array_equal(a.labels, b.labels)

    def test_identical_points_do_not_crash(self):
        points = np.ones((40, 4))
        result = kmeans_fit(points, n_clusters=4, max_iter=10, seed=0)
        assert np.allclose(result.centroids, 1.0)
        assert result.inertia == pytest.approx(0.0)

    def test_invalid_arguments(self, rng):
        points = rng.normal(size=(10, 2))
        with pytest.raises(ConfigurationError):
            kmeans_fit(points, n_clusters=0)
        with pytest.raises(ConfigurationError):
            kmeans_fit(points, n_clusters=2, max_iter=-1)

    def test_result_properties(self, rng):
        points = rng.normal(size=(64, 6))
        result = kmeans_fit(points, n_clusters=8, max_iter=5, seed=0)
        assert result.n_clusters == 8
        assert result.dim == 6

    @given(st.integers(2, 6), st.integers(20, 60))
    @settings(max_examples=15, deadline=None)
    def test_every_point_gets_valid_label(self, n_clusters, n_points):
        rng = np.random.default_rng(n_clusters * 100 + n_points)
        points = rng.normal(size=(n_points, 3))
        result = kmeans_fit(points, n_clusters=n_clusters, max_iter=10, seed=0)
        assert result.labels.shape == (n_points,)
        assert result.labels.min() >= 0
        assert result.labels.max() < n_clusters


class TestKMeansPlusPlus:
    def test_centroids_are_input_points(self, rng):
        points = rng.normal(size=(30, 4))
        centroids = kmeans_plus_plus_init(points, 5, rng)
        for centroid in centroids:
            assert np.any(np.all(np.isclose(points, centroid), axis=1))

    def test_handles_duplicate_points(self, rng):
        points = np.zeros((10, 2))
        centroids = kmeans_plus_plus_init(points, 4, rng)
        assert centroids.shape == (4, 2)


class TestKMeansAssign:
    def test_assigns_to_nearest(self):
        centroids = np.array([[0.0, 0.0], [10.0, 0.0]])
        points = np.array([[1.0, 0.0], [9.0, 0.5]])
        assert list(kmeans_assign(points, centroids)) == [0, 1]
