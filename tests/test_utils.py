"""Tests for repro.utils helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError
from repro.utils import (
    as_rng,
    batched,
    check_2d,
    check_matrix,
    log_softmax,
    sizeof_fmt,
    softmax,
    topk_indices,
)


class TestAsRng:
    def test_integer_seed_is_deterministic(self):
        assert as_rng(3).integers(1000) == as_rng(3).integers(1000)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_none_returns_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestCheck2d:
    def test_accepts_2d(self):
        arr = check_2d([[1.0, 2.0], [3.0, 4.0]])
        assert arr.shape == (2, 2)
        assert arr.dtype == np.float64

    def test_rejects_1d(self):
        with pytest.raises(DimensionError):
            check_2d(np.zeros(3))

    def test_rejects_empty(self):
        with pytest.raises(DimensionError):
            check_2d(np.zeros((0, 3)))

    def test_check_matrix_column_count(self):
        with pytest.raises(DimensionError):
            check_matrix(np.zeros((2, 3)), cols=4)
        assert check_matrix(np.zeros((2, 3)), cols=3).shape == (2, 3)


class TestSoftmax:
    def test_sums_to_one(self):
        probs = softmax(np.array([1.0, 2.0, 3.0]))
        assert probs.sum() == pytest.approx(1.0)

    def test_handles_large_values(self):
        probs = softmax(np.array([1e4, 1e4 + 1.0]))
        assert np.isfinite(probs).all()
        assert probs.sum() == pytest.approx(1.0)

    def test_axis_argument(self):
        probs = softmax(np.ones((3, 4)), axis=0)
        assert np.allclose(probs.sum(axis=0), 1.0)

    def test_log_softmax_consistency(self):
        x = np.array([0.5, -1.0, 2.0])
        assert np.allclose(np.exp(log_softmax(x)), softmax(x))

    @given(st.lists(st.floats(-50, 50), min_size=2, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_softmax_property(self, values):
        probs = softmax(np.array(values))
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()


class TestTopkIndices:
    def test_returns_largest(self):
        idx = topk_indices(np.array([0.1, 5.0, 3.0, 4.0]), 2)
        assert list(idx) == [1, 3]

    def test_k_larger_than_length(self):
        idx = topk_indices(np.array([1.0, 2.0]), 10)
        assert sorted(idx.tolist()) == [0, 1]

    def test_k_zero(self):
        assert topk_indices(np.array([1.0]), 0).size == 0

    def test_rejects_2d(self):
        with pytest.raises(DimensionError):
            topk_indices(np.zeros((2, 2)), 1)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50, unique=True),
           st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_matches_argsort(self, values, k):
        scores = np.array(values)
        expected = np.argsort(-scores)[: min(k, scores.size)]
        assert list(topk_indices(scores, k)) == list(expected)

    def test_ties_at_boundary_break_by_lowest_index(self):
        """Regression: ties at the k-th score used to be resolved by
        argpartition's arbitrary (platform-dependent) order."""
        scores = np.array([1.0, 2.0, 2.0, 1.0, 2.0, 0.5])
        assert list(topk_indices(scores, 2)) == [1, 2]
        assert list(topk_indices(scores, 3)) == [1, 2, 4]
        # A boundary tie between equal 1.0 scores picks index 0, not 3.
        assert list(topk_indices(scores, 4)) == [1, 2, 4, 0]

    def test_all_duplicate_scores_select_lowest_indices(self):
        scores = np.full(20, 7.0)
        for k in (1, 5, 20):
            assert list(topk_indices(scores, k)) == list(range(k))

    @given(st.lists(st.integers(-3, 3), min_size=1, max_size=60),
           st.integers(1, 12))
    @settings(max_examples=50, deadline=None)
    def test_duplicate_heavy_matches_lexsort(self, values, k):
        """Property: result equals the first k of a stable (-score, index)
        sort, for score vectors dense with duplicates."""
        scores = np.array(values, dtype=np.float64)
        expected = np.argsort(-scores, kind="stable")[: min(k, scores.size)]
        assert list(topk_indices(scores, k)) == list(expected)


class TestBatched:
    def test_even_batches(self):
        assert list(batched([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert list(batched([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(batched([1], 0))


class TestSizeofFmt:
    def test_bytes(self):
        assert sizeof_fmt(10) == "10.00 B"

    def test_gib(self):
        assert sizeof_fmt(2 * 1024 ** 3) == "2.00 GiB"
