"""Integration tests: end-to-end generation and paper-level quality orderings.

These tests exercise the whole stack (workload -> prefill -> policy -> decode
-> scoring) and assert the *qualitative* claims of the paper's evaluation:

* PQCache tracks the Oracle closely and beats the offloading baselines,
* dropping methods collapse on exact retrieval (Retr.KV-style) tasks,
* SnapKV/PyramidKV degrade when the question is moved to the front of the
  prompt while PQCache does not (Table 3),
* more PQ bits / more K-Means iterations do not hurt quality (Fig 10b / 12c).
"""

import numpy as np
import pytest

from repro.baselines import SelectionBudget, build_policy, default_policy_suite
from repro.core import PQCacheConfig
from repro.eval import EvaluationHarness
from repro.llm import ModelConfig, TransformerLM, greedy_generate
from repro.workloads import kv_retrieval, single_fact_qa

BUDGET = SelectionBudget(token_ratio=0.2, comm_ratio=1.0 / 64.0,
                         num_initial=4, num_local=16)


@pytest.fixture(scope="module")
def harness():
    return EvaluationHarness(ModelConfig.tiny(), seed=0, qk_coupling=1.0)


@pytest.fixture(scope="module")
def qa_scores(harness):
    dataset = single_fact_qa(num_samples=4, seq_len=448, seed=11)
    factories = {
        name: (lambda n=name: build_policy(n.split("(")[0], BUDGET))
        for name in ("full", "oracle", "pqcache", "infllm", "streaming-llm")
    }
    return harness.evaluate_suite(factories, [dataset])[dataset.name]


@pytest.fixture(scope="module")
def retrieval_scores(harness):
    dataset = kv_retrieval(num_samples=4, seq_len=448, seed=12)
    factories = {
        "oracle": lambda: build_policy("oracle", BUDGET),
        "pqcache": lambda: build_policy("pqcache", BUDGET),
        "h2o(c)": lambda: build_policy("h2o", BUDGET),
        "snapkv(c)": lambda: build_policy("snapkv", BUDGET),
    }
    return harness.evaluate_suite(factories, [dataset])[dataset.name]


class TestQualityOrdering:
    def test_pqcache_close_to_oracle(self, qa_scores):
        assert qa_scores["pqcache"] >= qa_scores["oracle"] - 15.0

    def test_pqcache_beats_infllm_and_streaming(self, qa_scores):
        assert qa_scores["pqcache"] > qa_scores["infllm"]
        assert qa_scores["pqcache"] > qa_scores["streaming-llm"]

    def test_full_is_upper_reference(self, qa_scores):
        assert qa_scores["full"] == pytest.approx(100.0)
        assert all(score <= 100.0 + 1e-9 for score in qa_scores.values())

    def test_dropping_methods_fail_kv_retrieval(self, retrieval_scores):
        """Table 4 Retr.KV: H2O collapses while PQCache stays close to Oracle."""
        assert retrieval_scores["pqcache"] >= retrieval_scores["oracle"] - 20.0
        assert retrieval_scores["h2o(c)"] < retrieval_scores["pqcache"] - 20.0


class TestQuestionPosition:
    def test_snapkv_drops_when_question_first_pqcache_does_not(self, harness):
        """Table 3: moving the question to the front hurts SnapKV but not
        PQCache."""
        end = single_fact_qa(num_samples=3, seq_len=384, seed=21,
                             question_position="end")
        start = single_fact_qa(num_samples=3, seq_len=384, seed=21,
                               question_position="start")
        factories = {
            "snapkv(c)": lambda: build_policy("snapkv", BUDGET),
            "pqcache": lambda: build_policy("pqcache", BUDGET),
        }
        table_end = harness.evaluate_suite(factories, [end])[end.name]
        table_start = harness.evaluate_suite(factories, [start])[start.name]
        snap_drop = table_end["snapkv(c)"] - table_start["snapkv(c)"]
        pqc_drop = table_end["pqcache"] - table_start["pqcache"]
        assert snap_drop > pqc_drop
        assert table_start["pqcache"] > table_start["snapkv(c)"]


class TestPQConfigurationRobustness:
    def test_more_iterations_do_not_hurt(self, harness):
        """Figure 12c: more K-Means iterations give equal or better quality."""
        dataset = single_fact_qa(num_samples=3, seq_len=384, seed=31)
        def factory(iters):
            return lambda: build_policy(
                "pqcache", BUDGET,
                pq_config=PQCacheConfig(num_partitions=2, num_bits=5,
                                        max_kmeans_iters=iters,
                                        gpu_cache_tokens=0),
            )
        low = harness.evaluate(factory(0), dataset).score
        high = harness.evaluate(factory(20), dataset).score
        # The slack absorbs scoring noise: with only 3 samples one flipped
        # answer moves the mean by ~6-12 points, and deterministic top-k
        # tie-breaking (ties at the k-th ADC score are now resolved by lowest
        # token index instead of argpartition's platform-dependent order) can
        # flip a borderline sample either way.
        assert high >= low - 15.0

    def test_config_sweep_all_reasonable(self, harness):
        """Figure 10b: PQCache is robust across m x b configurations."""
        dataset = single_fact_qa(num_samples=2, seq_len=384, seed=41)
        scores = {}
        for m, b in ((1, 6), (2, 4), (4, 4)):
            factory = lambda m=m, b=b: build_policy(
                "pqcache", BUDGET,
                pq_config=PQCacheConfig(num_partitions=m, num_bits=b,
                                        max_kmeans_iters=8, gpu_cache_tokens=0),
            )
            scores[(m, b)] = harness.evaluate(factory, dataset).score
        best = max(scores.values())
        assert best > 50.0
        assert min(scores.values()) > best - 60.0


class TestEndToEndGeneration:
    def test_generation_with_every_policy(self, tiny_config):
        """Every policy must run the real generation loop without error and
        produce the same number of tokens."""
        model = TransformerLM(tiny_config, seed=0)
        rng = np.random.default_rng(5)
        prompt = rng.integers(4, tiny_config.vocab_size, size=200).tolist()
        suite = default_policy_suite(BUDGET)
        outputs = {}
        for name, policy in suite.items():
            result = greedy_generate(model, prompt, max_new_tokens=3, policy=policy)
            assert len(result.token_ids) == 3
            outputs[name] = result.token_ids
        # Full attention and the (exact) oracle agree on the first token at least.
        assert outputs["full"][0] == outputs["oracle"][0]

    def test_pqcache_generation_close_to_full_logits(self, tiny_config):
        """Logit fidelity: selective attention with a generous budget stays
        close to the full-attention next-token distribution."""
        from repro.eval import logit_divergence
        model = TransformerLM(tiny_config, seed=0)
        rng = np.random.default_rng(6)
        prompt = rng.integers(4, tiny_config.vocab_size, size=160).tolist()
        generous = SelectionBudget(token_ratio=0.5, comm_ratio=1 / 64,
                                   num_initial=4, num_local=16)
        full = greedy_generate(model, prompt, max_new_tokens=2,
                               policy=build_policy("full", generous))
        pqc = greedy_generate(model, prompt, max_new_tokens=2,
                              policy=build_policy("pqcache", generous))
        streaming = greedy_generate(model, prompt, max_new_tokens=2,
                                    policy=build_policy("streaming-llm", generous))
        kl_pqc = logit_divergence(pqc.logits[0], full.logits[0])
        kl_streaming = logit_divergence(streaming.logits[0], full.logits[0])
        assert kl_pqc < kl_streaming
