"""Cross-module property-based tests on the library's core invariants.

These complement the per-module unit tests with randomised checks of the
invariants the system design relies on:

* PQ scores are exactly the inner products against the reconstructed keys,
  for any configuration and data.
* Selection budgets never exceed the prompt length and always leave room for
  the reserved initial/local segments.
* Every policy's selected indices are valid, unique, and include the
  initial and local segments.
* The GPU cache never holds more blocks than its capacity, regardless of the
  access pattern.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SelectionBudget, build_policy
from repro.core import BlockGpuCache, PQConfig, ProductQuantizer
from repro.eval import clone_prefill
from repro.llm import ModelConfig, TransformerLM


@st.composite
def pq_setup(draw):
    partitions = draw(st.sampled_from([1, 2, 4]))
    bits = draw(st.integers(2, 6))
    n = draw(st.integers(20, 120))
    seed = draw(st.integers(0, 1000))
    return partitions, bits, n, seed


class TestPQInvariants:
    @given(pq_setup())
    @settings(max_examples=15, deadline=None)
    def test_score_equals_reconstructed_inner_product(self, setup):
        partitions, bits, n, seed = setup
        rng = np.random.default_rng(seed)
        keys = rng.normal(size=(n, 16))
        pq = ProductQuantizer(PQConfig(dim=16, num_partitions=partitions,
                                       num_bits=bits, max_kmeans_iters=5, seed=0))
        codes = pq.fit(keys)
        query = rng.normal(size=16)
        assert np.allclose(pq.score(query, codes), pq.decode(codes) @ query)

    @given(pq_setup())
    @settings(max_examples=15, deadline=None)
    def test_codes_within_codebook_range(self, setup):
        partitions, bits, n, seed = setup
        rng = np.random.default_rng(seed)
        keys = rng.normal(size=(n, 16))
        pq = ProductQuantizer(PQConfig(dim=16, num_partitions=partitions,
                                       num_bits=bits, max_kmeans_iters=3, seed=0))
        codes = pq.fit(keys)
        assert codes.max() < (1 << bits)
        assert codes.shape == (n, partitions)


class TestBudgetInvariants:
    @given(st.floats(0.01, 1.0), st.integers(0, 16), st.integers(0, 64),
           st.integers(32, 4096))
    @settings(max_examples=50, deadline=None)
    def test_budget_bounds(self, ratio, num_initial, num_local, prompt_len):
        budget = SelectionBudget(token_ratio=ratio, num_initial=num_initial,
                                 num_local=num_local)
        total = budget.total_tokens(prompt_len)
        middle = budget.middle_budget(prompt_len)
        assert 1 <= total <= prompt_len + 1
        assert middle >= budget.min_middle
        segments = budget.segments(prompt_len)
        assert segments.initial_indices.size <= num_initial
        assert segments.local_indices.size <= num_local


class TestPolicySelectionInvariants:
    @pytest.fixture(scope="class")
    def setup(self):
        config = ModelConfig.tiny()
        model = TransformerLM(config, seed=0)
        rng = np.random.default_rng(1)
        prompt = rng.integers(4, config.vocab_size, size=120).tolist()
        prefill = model.prefill(prompt, observation_window=8)
        return config, prefill

    @given(st.sampled_from(["oracle", "h2o", "snapkv", "pyramidkv", "sparq",
                            "infllm", "pqcache", "streaming-llm"]),
           st.floats(0.05, 0.5), st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_selected_indices_always_valid(self, setup, name, ratio, qseed):
        config, prefill = setup
        budget = SelectionBudget(token_ratio=ratio, comm_ratio=1 / 64,
                                 num_initial=4, num_local=8)
        policy = build_policy(name, budget)
        owned = clone_prefill(prefill, config)
        policy.on_prefill(config, owned)
        query = np.random.default_rng(qseed).normal(
            size=(config.num_heads, config.head_dim))
        selected = policy.select(0, query, owned.kvcache)
        seq_len = owned.kvcache.seq_len
        segments = budget.segments(seq_len)
        for per_head in selected:
            assert per_head.dtype == np.int64
            assert per_head.size == np.unique(per_head).size
            if per_head.size:
                assert per_head.min() >= 0
                assert per_head.max() < seq_len
            assert set(segments.initial_indices.tolist()) <= set(per_head.tolist())
            assert set(segments.local_indices.tolist()) <= set(per_head.tolist())


class TestGpuCacheInvariants:
    @given(st.lists(st.lists(st.integers(0, 5000), min_size=1, max_size=40),
                    min_size=1, max_size=30),
           st.sampled_from(["lru", "lfu"]),
           st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_capacity_never_exceeded(self, accesses, policy, capacity_blocks):
        cache = BlockGpuCache(capacity_tokens=capacity_blocks * 64, block_size=64,
                              policy=policy, k_cache_blocks=8)
        for step in accesses:
            cache.access(np.asarray(step, dtype=np.int64))
            assert len(cache) <= cache.capacity_blocks
        stats = cache.stats.as_dict()
        assert stats["lookups"] == len(accesses)
        assert 0.0 <= stats["hit_rate"] <= 1.0
