"""Tests for the evaluation metrics and harness."""

import numpy as np
import pytest

from repro.baselines import SelectionBudget, build_policy, sparse_prefill
from repro.baselines.sparse_prefill import SparsePrefillConfig
from repro.eval import (
    EvaluationHarness,
    StepObservation,
    attention_recall_at_k,
    clone_prefill,
    evidence_coverage,
    evidence_exact,
    evidence_recovery,
    logit_divergence,
    score_step,
)
from repro.llm import ModelConfig, TokenSegments
from repro.workloads import kv_retrieval, single_fact_qa


def _make_obs(selected, seq_len=32, h_kv=2, d_h=8, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.normal(size=(h_kv, seq_len, d_h))
    queries = rng.normal(size=(h_kv, d_h))
    return StepObservation(
        layer=0,
        kv_queries=queries,
        keys=keys,
        selected=selected,
        segments=TokenSegments(seq_len=seq_len, num_initial=2, num_local=4),
    )


class TestMetrics:
    def test_full_selection_scores_one(self):
        obs = _make_obs(selected=None)
        evidence = np.array([5, 6])
        assert evidence_recovery(obs, evidence) == pytest.approx(1.0)
        assert evidence_exact(obs, evidence) == 1.0
        assert evidence_coverage(obs, evidence) == 1.0

    def test_empty_selection_scores_zero(self):
        obs = _make_obs(selected=[np.empty(0, dtype=np.int64)] * 2)
        evidence = np.array([5, 6])
        assert evidence_recovery(obs, evidence) == pytest.approx(0.0)
        assert evidence_exact(obs, evidence) == 0.0
        assert evidence_coverage(obs, evidence) == 0.0

    def test_partial_coverage(self):
        obs = _make_obs(selected=[np.array([5]), np.array([5])])
        evidence = np.array([5, 6])
        assert evidence_coverage(obs, evidence) == pytest.approx(0.5)
        assert evidence_exact(obs, evidence) == 0.0

    def test_empty_evidence_is_trivially_satisfied(self):
        obs = _make_obs(selected=[np.array([1]), np.array([2])])
        empty = np.array([], dtype=np.int64)
        assert evidence_recovery(obs, empty) == 1.0
        assert evidence_exact(obs, empty) == 1.0

    def test_union_across_heads_counts(self):
        obs = _make_obs(selected=[np.array([5]), np.array([6])])
        assert evidence_exact(obs, np.array([5, 6])) == 1.0

    def test_attention_recall_full_is_one(self):
        obs = _make_obs(selected=None)
        assert attention_recall_at_k(obs, k=5) == 1.0

    def test_attention_recall_detects_misses(self):
        obs_all = _make_obs(selected=None)
        obs_none = _make_obs(selected=[np.empty(0, dtype=np.int64)] * 2)
        assert attention_recall_at_k(obs_none, k=5) < attention_recall_at_k(obs_all, k=5)

    def test_score_step_dispatch(self):
        obs = _make_obs(selected=None)
        for metric in ("recovery", "exact", "coverage"):
            assert score_step(metric, obs, np.array([3])) == 1.0

    def test_logit_divergence(self):
        logits = np.array([1.0, 2.0, 3.0])
        assert logit_divergence(logits, logits) == pytest.approx(0.0, abs=1e-9)
        assert logit_divergence(logits[::-1], logits) > 0.0


@pytest.fixture(scope="module")
def harness():
    return EvaluationHarness(ModelConfig.tiny(), seed=0, qk_coupling=1.0)


@pytest.fixture(scope="module")
def qa_dataset():
    return single_fact_qa(num_samples=2, seq_len=320, seed=0)


class TestHarness:
    def test_clone_prefill_isolates_cache(self, model, prompt_ids, tiny_config):
        original = model.prefill(prompt_ids[:40])
        cloned = clone_prefill(original, tiny_config)
        model.decode_step(5, cloned.kvcache)
        assert cloned.kvcache.seq_len == 41
        assert original.kvcache.seq_len == 40

    def test_full_policy_scores_100(self, harness, qa_dataset, budget):
        result = harness.evaluate(lambda: build_policy("full", budget), qa_dataset)
        assert result.score == pytest.approx(100.0)
        assert len(result.per_sample) == 2

    def test_oracle_beats_streaming(self, harness, qa_dataset, budget):
        oracle = harness.evaluate(lambda: build_policy("oracle", budget), qa_dataset)
        streaming = harness.evaluate(lambda: build_policy("streaming-llm", budget),
                                     qa_dataset)
        assert oracle.score > streaming.score

    def test_prefill_cache_reused(self, harness, qa_dataset, budget):
        harness.evaluate(lambda: build_policy("oracle", budget), qa_dataset)
        cached = len(harness._prefill_cache)
        harness.evaluate(lambda: build_policy("snapkv", budget), qa_dataset)
        assert len(harness._prefill_cache) == cached
        harness.clear_cache()
        assert len(harness._prefill_cache) == 0

    def test_evaluate_suite_has_average_row(self, harness, budget):
        datasets = [single_fact_qa(num_samples=1, seq_len=256, seed=1),
                    kv_retrieval(num_samples=1, seq_len=256, seed=2)]
        table = harness.evaluate_suite(
            {"full": lambda: build_policy("full", budget),
             "oracle": lambda: build_policy("oracle", budget)},
            datasets,
        )
        assert "average" in table
        assert table["average"]["full"] == pytest.approx(100.0)
        rendered = EvaluationHarness.format_table(table)
        assert "average" in rendered and "oracle" in rendered

    def test_recall_metric_recorded(self, harness, qa_dataset, budget):
        result = harness.evaluate(lambda: build_policy("oracle", budget), qa_dataset,
                                  recall_k=8)
        assert 0.0 <= result.attention_recall <= 1.0

    def test_layer_aggregation_mean_is_stricter(self, harness, qa_dataset, budget):
        max_agg = harness.evaluate(lambda: build_policy("pqcache", budget), qa_dataset,
                                   layer_aggregation="max")
        mean_agg = harness.evaluate(lambda: build_policy("pqcache", budget), qa_dataset,
                                    layer_aggregation="mean")
        assert mean_agg.score <= max_agg.score + 1e-9

    def test_dataset_score_as_dict(self, harness, qa_dataset, budget):
        result = harness.evaluate(lambda: build_policy("full", budget), qa_dataset)
        d = result.as_dict()
        assert d["policy"] == "full"
        assert d["num_samples"] == 2


class TestSparsePrefill:
    def test_config_validation(self):
        with pytest.raises(Exception):
            SparsePrefillConfig(sink_tokens=-1)
        cfg = SparsePrefillConfig(sink_tokens=8, local_window=32, vertical_stripes=4)
        assert 0 < cfg.kept_fraction(1024) < 1
        assert cfg.speedup(1024) > 1.0

    def test_sparse_prefill_masks_window_scores(self, tiny_config):
        from repro.llm import TransformerLM
        model = TransformerLM(tiny_config, seed=0)
        rng = np.random.default_rng(0)
        prompt = rng.integers(4, tiny_config.vocab_size, size=200).tolist()
        dense = model.prefill(prompt)
        sparse = sparse_prefill(model, prompt,
                                SparsePrefillConfig(sink_tokens=4, local_window=16,
                                                    vertical_stripes=2))
        assert sparse.seq_len == dense.seq_len
        # Outside the sparse pattern the window aggregate must be zeroed.
        zeros_sparse = (sparse.aggregates[0].window_scores == 0).sum()
        zeros_dense = (dense.aggregates[0].window_scores == 0).sum()
        assert zeros_sparse > zeros_dense

    def test_harness_accepts_custom_prefill(self, tiny_config, budget):
        harness = EvaluationHarness(
            tiny_config, seed=0, qk_coupling=1.0,
            prefill_fn=lambda model, ids: sparse_prefill(
                model, ids, SparsePrefillConfig(sink_tokens=4, local_window=16)
            ),
        )
        dataset = single_fact_qa(num_samples=1, seq_len=256, seed=3)
        result = harness.evaluate(lambda: build_policy("pqcache", budget), dataset)
        assert 0.0 <= result.score <= 100.0
