"""Tests for the KVCache data structures and token segmentation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DimensionError
from repro.llm import KVCache, LayerKVCache, TokenSegments


class TestLayerKVCache:
    def test_append_single_token(self, rng):
        cache = LayerKVCache(num_kv_heads=2, head_dim=8)
        cache.append(rng.normal(size=(2, 8)), rng.normal(size=(2, 8)))
        assert len(cache) == 1
        assert cache.keys.shape == (2, 1, 8)

    def test_append_multiple_tokens(self, rng):
        cache = LayerKVCache(2, 8)
        cache.append(rng.normal(size=(2, 10, 8)), rng.normal(size=(2, 10, 8)))
        cache.append(rng.normal(size=(2, 8)), rng.normal(size=(2, 8)))
        assert len(cache) == 11

    def test_values_preserved_across_growth(self, rng):
        cache = LayerKVCache(1, 4)
        first_key = rng.normal(size=(1, 4))
        cache.append(first_key, first_key)
        # Force several re-allocations.
        for _ in range(600):
            cache.append(rng.normal(size=(1, 4)), rng.normal(size=(1, 4)))
        assert np.allclose(cache.keys[:, 0, :], first_key)
        assert len(cache) == 601

    def test_shape_mismatch_rejected(self, rng):
        cache = LayerKVCache(2, 8)
        with pytest.raises(DimensionError):
            cache.append(rng.normal(size=(2, 8)), rng.normal(size=(2, 9)))
        with pytest.raises(DimensionError):
            cache.append(rng.normal(size=(3, 8)), rng.normal(size=(3, 8)))

    def test_gather(self, rng):
        cache = LayerKVCache(2, 4)
        keys = rng.normal(size=(2, 6, 4))
        cache.append(keys, keys)
        gathered_k, gathered_v = cache.gather(np.array([1, 3]))
        assert np.allclose(gathered_k, keys[:, [1, 3], :])

    def test_gather_out_of_range(self, rng):
        cache = LayerKVCache(1, 4)
        cache.append(rng.normal(size=(1, 3, 4)), rng.normal(size=(1, 3, 4)))
        with pytest.raises(DimensionError):
            cache.gather(np.array([5]))

    def test_nbytes(self, rng):
        cache = LayerKVCache(2, 8)
        cache.append(rng.normal(size=(2, 10, 8)), rng.normal(size=(2, 10, 8)))
        assert cache.nbytes(dtype_bytes=2) == 2 * 2 * 10 * 8 * 2

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            LayerKVCache(0, 8)


class TestKVCache:
    def test_layer_access_and_len(self, rng):
        cache = KVCache(num_layers=3, num_kv_heads=2, head_dim=4)
        for layer in range(3):
            cache[layer].append(rng.normal(size=(2, 5, 4)), rng.normal(size=(2, 5, 4)))
        assert len(cache) == 5
        assert cache.seq_len == 5

    def test_nbytes_sums_layers(self, rng):
        cache = KVCache(2, 1, 4)
        for layer in range(2):
            cache[layer].append(rng.normal(size=(1, 3, 4)), rng.normal(size=(1, 3, 4)))
        assert cache.nbytes(2) == 2 * cache[0].nbytes(2)

    def test_invalid_layers(self):
        with pytest.raises(ConfigurationError):
            KVCache(0, 1, 4)


class TestTokenSegments:
    def test_basic_partition(self):
        seg = TokenSegments(seq_len=100, num_initial=4, num_local=16)
        assert list(seg.initial_indices) == list(range(4))
        assert list(seg.local_indices) == list(range(84, 100))
        assert seg.num_middle == 80
        assert seg.describe()["middle"] == 80

    def test_partition_covers_everything_once(self):
        seg = TokenSegments(seq_len=50, num_initial=3, num_local=10)
        union = np.concatenate([seg.initial_indices, seg.middle_indices,
                                seg.local_indices])
        assert sorted(union.tolist()) == list(range(50))

    def test_short_sequence_no_middle(self):
        seg = TokenSegments(seq_len=10, num_initial=4, num_local=16)
        assert seg.num_middle == 0
        assert seg.initial_indices.size + seg.local_indices.size == 10

    def test_zero_length(self):
        seg = TokenSegments(seq_len=0, num_initial=4, num_local=4)
        assert seg.initial_indices.size == 0
        assert seg.middle_indices.size == 0
        assert seg.local_indices.size == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenSegments(seq_len=-1, num_initial=0, num_local=0)
        with pytest.raises(ConfigurationError):
            TokenSegments(seq_len=5, num_initial=-1, num_local=0)

    @given(st.integers(0, 300), st.integers(0, 20), st.integers(0, 50))
    @settings(max_examples=50, deadline=None)
    def test_segments_never_overlap(self, seq_len, num_initial, num_local):
        seg = TokenSegments(seq_len=seq_len, num_initial=num_initial,
                            num_local=num_local)
        initial = set(seg.initial_indices.tolist())
        middle = set(seg.middle_indices.tolist())
        local = set(seg.local_indices.tolist())
        assert not (initial & middle)
        assert not (middle & local)
        assert not (initial & local)
        assert initial | middle | local == set(range(seq_len))
