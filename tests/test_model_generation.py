"""Tests for the transformer substrate, tokenizer and generation loop."""

import numpy as np
import pytest

from repro.baselines import FullAttentionPolicy, OracleTopKPolicy, SelectionBudget
from repro.errors import ConfigurationError
from repro.llm import ModelConfig, SimpleTokenizer, TransformerLM, greedy_generate


class TestPrefill:
    def test_cache_filled_for_every_layer(self, model, prefill, prompt_ids, tiny_config):
        assert prefill.seq_len == len(prompt_ids)
        for layer in range(tiny_config.num_layers):
            assert len(prefill.kvcache[layer]) == len(prompt_ids)
            assert prefill.kvcache[layer].keys.shape == (
                tiny_config.num_kv_heads, len(prompt_ids), tiny_config.head_dim
            )

    def test_logits_shape(self, prefill, tiny_config):
        assert prefill.logits.shape == (tiny_config.vocab_size,)

    def test_aggregates_shape(self, prefill, tiny_config, prompt_ids):
        assert len(prefill.aggregates) == tiny_config.num_layers
        agg = prefill.aggregates[0]
        assert agg.accumulated_scores.shape == (tiny_config.num_kv_heads, len(prompt_ids))
        assert agg.window_scores.shape == (tiny_config.num_kv_heads, len(prompt_ids))
        assert agg.observation_window == 16

    def test_accumulated_scores_sum_to_query_count(self, prefill, prompt_ids):
        """Each prompt query contributes a probability row summing to 1, so the
        per-head accumulated column sums must total the number of queries."""
        acc = prefill.aggregates[0].accumulated_scores
        assert np.allclose(acc.sum(axis=-1), len(prompt_ids), rtol=1e-6)

    def test_window_scores_sum_to_window(self, prefill):
        win = prefill.aggregates[0].window_scores
        assert np.allclose(win.sum(axis=-1), 16, rtol=1e-6)

    def test_query_block_size_does_not_change_results(self, model, prompt_ids):
        small = model.prefill(prompt_ids[:64], query_block=16)
        large = model.prefill(prompt_ids[:64], query_block=1024)
        assert np.allclose(small.logits, large.logits)
        assert np.allclose(small.aggregates[0].accumulated_scores,
                           large.aggregates[0].accumulated_scores)

    def test_collect_queries(self, model, prompt_ids, tiny_config):
        result = model.prefill(prompt_ids[:32], collect_queries=True)
        assert len(result.prompt_queries) == tiny_config.num_layers
        assert result.prompt_queries[0].shape == (tiny_config.num_heads, 32,
                                                  tiny_config.head_dim)

    def test_empty_prompt_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.prefill([])

    def test_deterministic(self, tiny_config, prompt_ids):
        a = TransformerLM(tiny_config, seed=3).prefill(prompt_ids[:40])
        b = TransformerLM(tiny_config, seed=3).prefill(prompt_ids[:40])
        assert np.allclose(a.logits, b.logits)

    def test_different_seeds_differ(self, tiny_config, prompt_ids):
        a = TransformerLM(tiny_config, seed=1).prefill(prompt_ids[:40])
        b = TransformerLM(tiny_config, seed=2).prefill(prompt_ids[:40])
        assert not np.allclose(a.logits, b.logits)


class TestDecodeStep:
    def test_appends_to_cache(self, model, prompt_ids, tiny_config):
        result = model.prefill(prompt_ids[:40])
        model.decode_step(5, result.kvcache)
        assert result.kvcache.seq_len == 41

    def test_full_selector_equivalent_to_none(self, model, prompt_ids, tiny_config):
        a = model.prefill(prompt_ids[:40])
        b = model.prefill(prompt_ids[:40])
        all_tokens = lambda layer, query, cache: None
        explicit = lambda layer, query, cache: [
            np.arange(len(cache[layer]), dtype=np.int64)
        ] * tiny_config.num_kv_heads
        logits_a = model.decode_step(7, a.kvcache, all_tokens)
        logits_b = model.decode_step(7, b.kvcache, explicit)
        assert np.allclose(logits_a, logits_b)

    def test_selective_attention_changes_logits(self, model, prompt_ids, tiny_config):
        a = model.prefill(prompt_ids[:60])
        b = model.prefill(prompt_ids[:60])
        restricted = lambda layer, query, cache: np.arange(5, dtype=np.int64)
        full_logits = model.decode_step(7, a.kvcache, None)
        restricted_logits = model.decode_step(7, b.kvcache, restricted)
        assert not np.allclose(full_logits, restricted_logits)


class TestQkCoupling:
    def test_coupling_validated(self, tiny_config):
        with pytest.raises(ConfigurationError):
            TransformerLM(tiny_config, qk_coupling=1.5)

    def test_coupling_creates_matching_attention(self, tiny_config):
        """With full QK coupling, a repeated token's key must score higher
        against the same token's query than random tokens do."""
        model = TransformerLM(tiny_config, seed=0, qk_coupling=1.0, rope_base=1e6)
        rng = np.random.default_rng(0)
        prompt = rng.integers(4, tiny_config.vocab_size, size=100).tolist()
        target = prompt[50]
        result = model.prefill(prompt + [target], collect_queries=True)
        queries = result.prompt_queries[0]
        kv_query = queries[:, -1, :].reshape(tiny_config.num_kv_heads, -1,
                                             tiny_config.head_dim).mean(axis=1)
        keys = result.kvcache[0].keys
        scores = np.einsum("hd,hsd->hs", kv_query, keys)
        # Rank of the matching position among all non-final positions.
        ranks = [int((scores[h] > scores[h, 50]).sum()) for h in range(tiny_config.num_kv_heads)]
        assert min(ranks) < 10

    def test_embedding_overrides(self, tiny_config):
        override = np.ones(tiny_config.hidden_dim)
        model = TransformerLM(tiny_config, seed=0, embedding_overrides={7: override})
        assert np.allclose(model.embedding[7], override)


class TestGreedyGenerate:
    def test_generates_requested_tokens(self, model, prompt_ids):
        result = greedy_generate(model, prompt_ids[:40], max_new_tokens=4)
        assert len(result.token_ids) == 4
        assert result.logits.shape[0] == 4

    def test_policy_receives_selections(self, model, prompt_ids, budget, tiny_config):
        policy = OracleTopKPolicy(budget)
        result = greedy_generate(model, prompt_ids[:80], max_new_tokens=2, policy=policy)
        assert len(result.selections) == 2
        assert len(result.selections[0]) == tiny_config.num_layers

    def test_full_policy_matches_no_policy(self, model, prompt_ids, budget):
        without = greedy_generate(model, prompt_ids[:40], max_new_tokens=3)
        with_full = greedy_generate(model, prompt_ids[:40], max_new_tokens=3,
                                    policy=FullAttentionPolicy(budget))
        assert without.token_ids == with_full.token_ids

    def test_forbidden_ids_never_emitted(self, model, prompt_ids):
        forbidden = list(range(0, 256))
        result = greedy_generate(model, prompt_ids[:40], max_new_tokens=5,
                                 forbidden_ids=forbidden)
        assert all(t >= 256 for t in result.token_ids)

    def test_zero_tokens_rejected(self, model, prompt_ids):
        with pytest.raises(ConfigurationError):
            greedy_generate(model, prompt_ids[:10], max_new_tokens=0)


class TestTokenizer:
    def test_roundtrip(self):
        tok = SimpleTokenizer()
        ids = tok.encode("hello world hello")
        assert ids[0] == tok.BOS
        assert tok.decode(ids) == "hello world hello"

    def test_same_word_same_id(self):
        tok = SimpleTokenizer()
        assert tok.token_id("alpha") == tok.token_id("alpha")

    def test_ids_within_vocab(self):
        tok = SimpleTokenizer(vocab_size=64)
        ids = tok.encode("a b c d e f g h i j")
        assert max(ids) < 64
        assert min(ids) >= 0

    def test_vocab_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            SimpleTokenizer(vocab_size=4, num_special=4)

    def test_decode_stops_at_eos(self):
        tok = SimpleTokenizer()
        ids = tok.encode("alpha beta") + [tok.EOS] + tok.encode("gamma", add_bos=False)
        assert "gamma" not in tok.decode(ids)
