"""Directed multi-tenant QoS property tests.

Companions to the randomized fuzz in ``test_preemption.py``:

* **liveness** — the highest class's oldest request always completes under
  2x oversubscription, and priority buys latency (class TTFT ordering);
* **starvation bound** — with shedding off, every submitted request of the
  lowest class still finishes (priority reorders, it never starves);
* **weighted fairness** — the chunked-prefill budget splits across tenants
  in proportion to their declared weights;
* **shedding** — ``max_waiting`` / ``shed_infeasible`` refuse work with
  ``finish_reason="shed"`` and leave zero pool/swap references behind;
* **metrics plumbing** — per-class/per-tenant buckets survive
  ``snapshot()/merge()/reset()`` and fleet aggregation (the regression for
  dict-valued EngineMetrics fields).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.serve import (
    ContinuousBatchingScheduler,
    EngineMetrics,
    InferenceEngine,
    QoSClassMetrics,
    Request,
    RequestQoS,
    SamplingParams,
    SchedulerConfig,
)
from test_preemption import _make_engine, _outputs_equal, audit_engine, fuzz_model

assert fuzz_model is not None  # re-exported fixture (quiet the linter)


def _request(rid, rng, plen=60, priority=0, tenant="default", weight=1.0,
             max_new=4):
    return Request(
        prompt_ids=rng.integers(4, 128, size=plen).tolist(),
        request_id=rid,
        sampling=SamplingParams(max_new_tokens=max_new, observation_window=8),
        qos=RequestQoS(priority=priority, tenant=tenant, weight=weight),
    )


def _qos_engine(model, pool_blocks, **scheduler_kwargs):
    scheduler_kwargs.setdefault("max_batch_size", 4)
    scheduler_kwargs.setdefault("max_prefill_chunk_tokens", 32)
    return InferenceEngine(
        model,
        scheduler_config=SchedulerConfig(**scheduler_kwargs),
        enable_prefix_caching=True,
        kv_block_size=8,
        kv_pool_blocks=pool_blocks,
        max_retained_outputs=0,
    )


# ---------------------------------------------------------------- spec


class TestRequestQoS:
    def test_defaults_are_single_best_effort_class(self):
        qos = RequestQoS()
        assert (qos.priority, qos.tenant, qos.weight) == (0, "default", 1.0)
        assert Request(prompt_ids=[1, 2]).qos == qos

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RequestQoS(tenant="")
        with pytest.raises(ConfigurationError):
            RequestQoS(weight=0.0)
        with pytest.raises(ConfigurationError):
            RequestQoS(weight=-1.0)

    def test_scheduler_config_validation(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(max_waiting=0)
        with pytest.raises(ConfigurationError):
            SchedulerConfig(proactive_swap_free_fraction=0.0)
        with pytest.raises(ConfigurationError):
            SchedulerConfig(proactive_swap_free_fraction=1.5)


# ----------------------------------------------------- scheduler ordering


class _Item:
    """Bare duck-typed scheduler item (the engine's RequestState protocol)."""

    def __init__(self, name, remaining=0, priority=0, tenant="default",
                 weight=1.0, seq=0):
        self.name = name
        self.remaining_prefill_tokens = remaining
        self.priority = priority
        self.tenant = tenant
        self.weight = weight
        self.seq = seq

    def __repr__(self):
        return f"Item({self.name})"


class TestSchedulerOrdering:
    def test_admission_is_priority_then_fcfs(self):
        sched = ContinuousBatchingScheduler(
            SchedulerConfig(max_batch_size=8, max_prefills_per_step=8)
        )
        items = [
            _Item("lo-0", priority=0, seq=0),
            _Item("hi-0", priority=2, seq=1),
            _Item("mid", priority=1, seq=2),
            _Item("hi-1", priority=2, seq=3),
        ]
        for item in items:
            sched.submit(item)
        admitted = sched.schedule().admitted
        assert [item.name for item in admitted] == ["hi-0", "hi-1", "mid", "lo-0"]

    def test_untagged_queue_stays_fcfs(self):
        sched = ContinuousBatchingScheduler(
            SchedulerConfig(max_batch_size=8, max_prefills_per_step=8)
        )
        items = [_Item(f"r{i}", seq=i) for i in range(4)]
        for item in items:
            sched.submit(item)
        assert [i.name for i in sched.schedule().admitted] == \
            ["r0", "r1", "r2", "r3"]

    def test_preempt_requeues_at_front_of_class_only(self):
        sched = ContinuousBatchingScheduler(
            SchedulerConfig(max_batch_size=8, max_prefills_per_step=8)
        )
        victim = _Item("victim", priority=1, seq=0)
        sched.submit(victim)
        sched.schedule()  # victim is running
        sched.submit(_Item("hi", priority=2, seq=1))
        sched.submit(_Item("peer", priority=1, seq=2))
        sched.preempt(victim)
        # Above its same-class peer, but never above the higher class.
        assert [i.name for i in sched.waiting_items()] == \
            ["hi", "victim", "peer"]

    def test_victims_come_from_the_lowest_class_first(self):
        for policy, expected in (("lifo", "lo-young"), ("fifo", "lo-old")):
            sched = ContinuousBatchingScheduler(
                SchedulerConfig(max_batch_size=8, max_prefills_per_step=8,
                                victim_policy=policy)
            )
            items = [
                _Item("lo-old", priority=0, seq=0),
                _Item("hi", priority=2, seq=1),
                _Item("lo-young", priority=0, seq=2),
                _Item("mid", priority=1, seq=3),
            ]
            for item in items:
                sched.submit(item)
            sched.schedule()
            assert sched.pick_victim().name == expected

    def test_weighted_fair_split_matches_tenant_weights(self):
        sched = ContinuousBatchingScheduler(
            SchedulerConfig(max_batch_size=8, max_prefills_per_step=8,
                            max_prefill_chunk_tokens=90)
        )
        items = [
            _Item("a0", remaining=100, tenant="alpha", weight=2.0, seq=0),
            _Item("a1", remaining=100, tenant="alpha", weight=2.0, seq=1),
            _Item("b0", remaining=100, tenant="beta", weight=1.0, seq=2),
        ]
        for item in items:
            sched.submit(item)
        decision = sched.schedule()
        grants = {item.name: n for item, n in decision.prefill_chunks}
        # 90 tokens at 2:1 → alpha 60 (max-min 30/30 inside), beta 30.
        assert grants["a0"] + grants["a1"] == 60
        assert grants["b0"] == 30

    def test_single_tenant_split_reduces_to_plain_max_min(self):
        sched = ContinuousBatchingScheduler(
            SchedulerConfig(max_batch_size=8, max_prefills_per_step=8,
                            max_prefill_chunk_tokens=40)
        )
        items = [
            _Item("short", remaining=10, seq=0),
            _Item("long", remaining=100, seq=1),
        ]
        for item in items:
            sched.submit(item)
        grants = {item.name: n
                  for item, n in sched.schedule().prefill_chunks}
        # Pre-QoS water-filling: short served fully, leftover to long.
        assert grants == {"short": 10, "long": 30}

    def test_underusing_tenant_rolls_budget_over(self):
        sched = ContinuousBatchingScheduler(
            SchedulerConfig(max_batch_size=8, max_prefills_per_step=8,
                            max_prefill_chunk_tokens=80)
        )
        items = [
            _Item("tiny", remaining=8, tenant="alpha", weight=1.0, seq=0),
            _Item("big", remaining=200, tenant="beta", weight=1.0, seq=1),
        ]
        for item in items:
            sched.submit(item)
        grants = {item.name: n
                  for item, n in sched.schedule().prefill_chunks}
        assert grants["tiny"] == 8
        assert grants["big"] == 72  # alpha's unused share rolled over


# ----------------------------------------------------- engine properties


class TestQoSLiveness:
    def test_top_class_oldest_finishes_under_2x_oversubscription(
        self, fuzz_model
    ):
        rng = np.random.default_rng(30)
        requests = [
            _request("bg-0", rng, plen=80, priority=0, tenant="batch"),
            _request("bg-1", rng, plen=80, priority=0, tenant="batch"),
            _request("fg-0", rng, plen=80, priority=2, tenant="chat"),
            _request("bg-2", rng, plen=80, priority=0, tenant="batch"),
            _request("fg-1", rng, plen=80, priority=2, tenant="chat"),
            _request("bg-3", rng, plen=80, priority=0, tenant="batch"),
        ]
        refs = _make_engine(fuzz_model, None, "swap", 32).run(
            [Request(prompt_ids=list(r.prompt_ids), request_id=r.request_id,
                     sampling=r.sampling, qos=r.qos) for r in requests]
        )
        # Working set ≈ 6 requests x 11 blocks; give roughly half.
        engine = _qos_engine(fuzz_model, 34)
        engine.victim_log = []
        finals = engine.run(list(requests))
        # Liveness: everything finishes (no shed, no CapacityError) and the
        # bytes never moved.
        for request in requests:
            assert finals[request.request_id].finish_reason in ("length", "stop")
            _outputs_equal(finals[request.request_id], refs[request.request_id])
        audit_engine(engine, "qos liveness")
        # Priority bought latency: the top class's mean TTFT beats the
        # background class's, and the oldest top-class request was never a
        # victim of a lower class.
        per_class = engine.metrics.per_class
        assert per_class[2].mean_ttft < per_class[0].mean_ttft
        for _, _, vp, vs in engine.victim_log:
            assert not (vp == 2 and vs == 2)  # fg-0 (seq 2) never victimised
        assert per_class[2].requests_finished == 2
        assert per_class[0].requests_finished == 4

    def test_lowest_class_never_starves_with_shedding_off(self, fuzz_model):
        rng = np.random.default_rng(31)
        low = _request("low", rng, plen=60, priority=0, tenant="batch")
        highs = [
            _request(f"high-{i}", rng, plen=60, priority=3, tenant="chat")
            for i in range(5)
        ]
        engine = _qos_engine(fuzz_model, 30)
        engine.submit(low)
        for high in highs:
            engine.submit(high)
        finals = engine.run()
        # The burst of higher-class work reorders the low request but — with
        # admission control off — can never shed or starve it.
        assert finals["low"].finish_reason in ("length", "stop")
        assert engine.metrics.requests_shed == 0
        assert engine.metrics.per_class[0].requests_finished == 1


class TestShedding:
    def test_max_waiting_sheds_lowest_ranked(self, fuzz_model):
        rng = np.random.default_rng(32)
        engine = _qos_engine(fuzz_model, 30, max_batch_size=1,
                             max_prefills_per_step=1, max_waiting=1)
        engine.submit(_request("a", rng, priority=1))
        engine.step()  # "a" takes the only batch slot
        engine.submit(_request("b", rng, priority=0))   # waits
        engine.submit(_request("c", rng, priority=2))   # overflows the queue
        finals = engine.run()
        # The running request is untouchable by admission control; "b"
        # (lowest waiting class) was shed when "c" overflowed the 1-deep
        # waiting queue, even though "b" arrived first.
        assert finals["b"].finish_reason == "shed"
        assert finals["b"].token_ids == []
        assert finals["a"].finish_reason in ("length", "stop")
        assert finals["c"].finish_reason in ("length", "stop")
        assert engine.metrics.requests_shed == 1
        assert engine.metrics.per_class[0].requests_shed == 1
        assert engine.metrics.per_tenant["default"].requests_shed == 1
        audit_engine(engine, "overflow shed")

    def test_shed_frees_all_references(self, fuzz_model):
        rng = np.random.default_rng(33)
        engine = _qos_engine(fuzz_model, 30, max_batch_size=1,
                             max_prefills_per_step=1, max_waiting=1)
        engine.submit(_request("r0", rng, priority=1))
        engine.submit(_request("r1", rng, priority=0))
        engine.submit(_request("r2", rng, priority=0))
        # Both overflow submits shed immediately (r0 stays, each new p0
        # arrival is the lowest-ranked waiting item); the books must balance
        # before any step runs and after the drain.
        assert engine.metrics.requests_shed == 2
        audit_engine(engine, "post-shed, pre-run")
        finals = engine.run()
        shed_ids = {rid for rid, out in finals.items()
                    if out.finish_reason == "shed"}
        assert shed_ids == {"r1", "r2"}
        assert finals["r0"].finish_reason in ("length", "stop")
        audit_engine(engine, "post-shed, drained")

    def test_shed_infeasible_replaces_capacity_error(self, fuzz_model):
        rng = np.random.default_rng(34)
        # 4-block pool x 8-token blocks = 32 tokens; a 120-token prompt is
        # provably infeasible.
        engine = _qos_engine(fuzz_model, 4, shed_infeasible=True)
        engine.submit(_request("big", rng, plen=120))
        finals = engine.run()
        assert finals["big"].finish_reason == "shed"
        assert engine.metrics.requests_shed == 1
        # Without the opt-in the same demand still raises (pre-QoS contract).
        strict = _qos_engine(fuzz_model, 4)
        strict.submit(_request("big", rng, plen=120))
        with pytest.raises(CapacityError):
            strict.run()

    def test_shed_output_flows_through_stream(self, fuzz_model):
        rng = np.random.default_rng(35)
        engine = _qos_engine(fuzz_model, 4, shed_infeasible=True)
        engine.submit(_request("big", rng, plen=120))
        outputs = list(engine.stream())
        assert [o.finish_reason for o in outputs if o.finished] == ["shed"]


class TestProactiveSwap:
    def test_pool_pressure_swaps_low_priority_for_waiting_high(
        self, fuzz_model
    ):
        rng = np.random.default_rng(36)
        low = _request("low", rng, plen=80, priority=0, max_new=6)
        high = _request("high", rng, plen=80, priority=2, max_new=6)
        refs = _make_engine(fuzz_model, None, "swap", 32).run(
            [Request(prompt_ids=list(r.prompt_ids), request_id=r.request_id,
                     sampling=r.sampling, qos=r.qos) for r in (low, high)]
        )
        engine = _qos_engine(fuzz_model, 24,
                             proactive_swap_free_fraction=0.9)
        engine.submit(low)
        engine.step()  # low starts prefilling, pool tightens
        engine.submit(high)
        finals = {}
        for _ in range(300):
            for output in engine.step():
                if output.finished:
                    finals[output.request_id] = output
            if not engine.has_unfinished:
                break
        assert engine.metrics.proactive_swap_outs > 0
        assert engine.metrics.per_class[0].proactive_swap_outs > 0
        _outputs_equal(finals["low"], refs["low"])
        _outputs_equal(finals["high"], refs["high"])
        audit_engine(engine, "proactive swap")

    def test_no_proactive_swap_without_higher_priority_waiting(
        self, fuzz_model
    ):
        rng = np.random.default_rng(37)
        engine = _qos_engine(fuzz_model, 24,
                             proactive_swap_free_fraction=0.9)
        finals = engine.run([
            _request("p0", rng, plen=80, priority=1),
            _request("p1", rng, plen=80, priority=1),
        ])
        # Same class everywhere: proactive swap must never fire (the
        # reactive ladder may still preempt under genuine pressure).
        assert engine.metrics.proactive_swap_outs == 0
        assert all(f.finish_reason in ("length", "stop")
                   for f in finals.values())


# -------------------------------------------------------------- metrics


class TestQoSMetrics:
    def _bucketed(self):
        metrics = EngineMetrics(clock=2.0, requests_shed=1)
        bucket = metrics.class_bucket(1)
        bucket.requests_submitted = 3
        bucket.requests_finished = 2
        bucket.ttft.observe(1.5)
        bucket.ttft.observe(2.5)
        metrics.tenant_bucket("chat").requests_submitted = 3
        return metrics

    def test_snapshot_isolates_buckets(self):
        metrics = self._bucketed()
        snap = metrics.snapshot()
        metrics.class_bucket(1).requests_finished += 5
        metrics.class_bucket(7).requests_submitted += 1
        assert snap.per_class[1].requests_finished == 2
        assert 7 not in snap.per_class

    def test_merge_sums_buckets_per_key(self):
        a, b = self._bucketed(), self._bucketed()
        b.clock = 5.0
        b.class_bucket(2).requests_submitted = 4
        a.merge(b.snapshot())
        assert a.clock == 5.0  # clocks max
        assert a.requests_shed == 2  # counters sum
        assert a.per_class[1].requests_submitted == 6
        assert a.per_class[1].mean_ttft == pytest.approx(2.0)
        assert a.per_class[1].ttft.count == 4  # digests merge exactly
        assert a.per_class[2].requests_submitted == 4
        assert a.per_tenant["chat"].requests_submitted == 6
        # Merging does not alias: mutating the source leaves the sink alone.
        b.class_bucket(2).requests_submitted = 100
        assert a.per_class[2].requests_submitted == 4

    def test_reset_restores_default_factory_fields(self):
        metrics = self._bucketed()
        metrics.reset()
        assert metrics.per_class == {} and metrics.per_tenant == {}
        assert metrics.requests_shed == 0 and metrics.clock == 0.0
        # Regression: reset used to write dataclasses.MISSING into
        # default_factory fields; a fresh bucket must work afterwards.
        metrics.class_bucket(0).requests_submitted += 1
        assert metrics.per_class[0].requests_submitted == 1

    def test_qos_class_metrics_roundtrip(self):
        bucket = QoSClassMetrics(requests_finished=2)
        for ttft, tpot in ((1.0, 0.4), (2.0, 0.6)):
            bucket.ttft.observe(ttft)
            bucket.tpot.observe(tpot)
        assert bucket.mean_ttft == pytest.approx(1.5)
        assert bucket.mean_tpot == pytest.approx(0.5)
        assert QoSClassMetrics().mean_ttft is None
        merged = bucket.snapshot().merge(bucket)
        assert merged.requests_finished == 4
        assert merged.ttft.count == 4
        assert bucket.requests_finished == 2  # snapshot detached
        assert bucket.ttft.count == 2  # digest snapshot detached too
        report = bucket.as_dict()
        assert report["requests_finished"] == 2
        assert report["mean_ttft"] == pytest.approx(1.5)
        assert report["ttft"]["p99"] == pytest.approx(2.0, rel=0.03)

    def test_request_metrics_backward_compatible_defaults(self):
        metrics = Request(prompt_ids=[1]).qos  # untouched default spec
        assert (metrics.priority, metrics.tenant) == (0, "default")
        from repro.serve import RequestMetrics

        legacy = RequestMetrics(arrival_time=1.0, num_prompt_tokens=4)
        assert legacy.priority == 0 and legacy.tenant == "default"
        report = legacy.as_dict()
        assert report["priority"] == 0 and report["tenant"] == "default"

    def test_engine_as_dict_carries_qos_sections(self, fuzz_model):
        rng = np.random.default_rng(38)
        engine = _qos_engine(fuzz_model, None)
        engine.run([_request("r", rng, priority=1, tenant="chat")])
        report = engine.metrics.as_dict()
        assert report["per_class"][1]["requests_finished"] == 1
        assert report["per_tenant"]["chat"]["requests_finished"] == 1
        assert report["requests_shed"] == 0
