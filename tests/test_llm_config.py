"""Tests for model geometry configuration and its accounting helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.llm import ModelConfig


class TestValidation:
    def test_head_divisibility(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(num_layers=2, hidden_dim=100, num_heads=3, num_kv_heads=1,
                        ffn_dim=64)

    def test_gqa_grouping(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(num_layers=2, hidden_dim=64, num_heads=8, num_kv_heads=3,
                        ffn_dim=64)

    def test_positive_values(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(num_layers=0, hidden_dim=64, num_heads=4, num_kv_heads=2,
                        ffn_dim=64)
        with pytest.raises(ConfigurationError):
            ModelConfig(num_layers=2, hidden_dim=64, num_heads=4, num_kv_heads=2,
                        ffn_dim=64, dtype_bytes=3)


class TestGeometry:
    def test_head_dim_and_group(self):
        cfg = ModelConfig.llama3_8b()
        assert cfg.head_dim == 128
        assert cfg.gqa_group_size == 4

    def test_named_configs(self):
        assert ModelConfig.mistral_7b().max_context == 32768
        assert ModelConfig.llama3_70b().num_layers == 80
        assert ModelConfig.llama2_13b().num_kv_heads == 40
        assert ModelConfig.tiny().num_layers == 4
        assert ModelConfig.small().num_heads == 8


class TestMemoryAccounting:
    def test_kv_bytes_per_token_llama8b(self):
        cfg = ModelConfig.llama3_8b()
        # 2 (K+V) * 8 heads * 128 dim * 2 bytes * 32 layers = 131072 bytes/token
        assert cfg.kv_bytes_per_token() == 2 * 8 * 128 * 2 * 32

    def test_figure1_scale_128k_batch128(self):
        """Figure 1: a 7B-class model at 128K context and batch 128 needs on
        the order of 1 TB of KVCache if keys/values use all heads (MHA)."""
        mha_7b = ModelConfig(num_layers=32, hidden_dim=4096, num_heads=32,
                             num_kv_heads=32, ffn_dim=11008)
        total = mha_7b.kvcache_bytes(seq_len=128 * 1024, batch_size=128)
        assert total > 0.9e12

    def test_kvcache_scales_linearly(self):
        cfg = ModelConfig.llama3_8b()
        assert cfg.kvcache_bytes(2048) == 2 * cfg.kvcache_bytes(1024)
        assert cfg.kvcache_bytes(1024, batch_size=4) == 4 * cfg.kvcache_bytes(1024)


class TestFlopAccounting:
    def test_prefill_attention_quadratic(self):
        cfg = ModelConfig.tiny()
        f1 = cfg.attention_flops_prefill(1024)
        f2 = cfg.attention_flops_prefill(2048)
        assert f2 > 2 * f1  # super-linear growth

    def test_decode_flops_drop_with_selective_attention(self):
        cfg = ModelConfig.llama3_8b()
        full = cfg.layer_flops_decode(65536)
        selective = cfg.layer_flops_decode(65536, attended_tokens=65536 // 5)
        assert selective < full

    def test_layer_flops_positive(self):
        cfg = ModelConfig.tiny()
        assert cfg.layer_flops_prefill(128) > 0
        assert cfg.layer_flops_decode(128) > 0
