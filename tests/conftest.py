"""Shared fixtures for the test suite.

Heavy objects (the substrate model and a prefilled prompt) are session-scoped
so the many tests that need "a realistic KVCache" do not each pay for a
prefill.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SelectionBudget
from repro.llm import ModelConfig, TransformerLM


@pytest.fixture(scope="session")
def tiny_config() -> ModelConfig:
    """Small geometry used across unit tests."""
    return ModelConfig.tiny()


@pytest.fixture(scope="session")
def model(tiny_config) -> TransformerLM:
    """Random-initialised substrate model (no QK coupling)."""
    return TransformerLM(tiny_config, seed=0)


@pytest.fixture(scope="session")
def coupled_model(tiny_config) -> TransformerLM:
    """Substrate model with query/key coupling, as used by the eval harness."""
    return TransformerLM(tiny_config, seed=0, qk_coupling=1.0, rope_base=1e6)


@pytest.fixture(scope="session")
def prompt_ids(tiny_config) -> list[int]:
    rng = np.random.default_rng(7)
    return rng.integers(4, tiny_config.vocab_size, size=160).tolist()


@pytest.fixture(scope="session")
def prefill(model, prompt_ids):
    """A prefilled prompt shared (read-only) by policy tests."""
    return model.prefill(prompt_ids, observation_window=16)


@pytest.fixture()
def budget() -> SelectionBudget:
    return SelectionBudget(
        token_ratio=0.2, comm_ratio=1.0 / 64.0, num_initial=4, num_local=16
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
