"""Shared-prefix cache: matching, collisions, eviction, and engine reuse.

The headline property tested here is the tentpole acceptance criterion:
decode outputs are **byte-identical** between a request served cold and the
same request served through a prefix-cache hit — per policy, including the
PQ-artifact reuse path and the aggregate-snapshot resume path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SelectionBudget
from repro.baselines.pqcache_policy import PQCachePolicy
from repro.core.pqcache import PQCacheConfig
from repro.errors import CapacityError, ConfigurationError
from repro.llm import ModelConfig, TransformerLM
from repro.llm.kvcache import BlockAllocator, PagedKVCache
from repro.serve import (
    InferenceEngine,
    PolicySpec,
    PrefixCache,
    Request,
    SamplingParams,
    SchedulerConfig,
)


@pytest.fixture(scope="module")
def small_model():
    config = ModelConfig(
        num_layers=2, hidden_dim=64, num_heads=4, num_kv_heads=2,
        ffn_dim=128, vocab_size=256, name="prefix-test",
    )
    return TransformerLM(config, seed=3)


@pytest.fixture(scope="module")
def prompt():
    rng = np.random.default_rng(11)
    return rng.integers(4, 256, size=700).tolist()


def _engine(model, chunk=256, caching=True, **kwargs):
    return InferenceEngine(
        model,
        scheduler_config=SchedulerConfig(max_prefill_chunk_tokens=chunk),
        enable_prefix_caching=caching,
        **kwargs,
    )


def _serve(engine, prompt, policy_name, max_new_tokens=6):
    spec = None
    if policy_name is not None:
        budget = SelectionBudget(token_ratio=0.25, num_initial=4, num_local=16)
        spec = PolicySpec.named(policy_name, budget)
    rid = engine.submit(
        Request(
            prompt_ids=list(prompt),
            sampling=SamplingParams(max_new_tokens=max_new_tokens),
            policy_spec=spec,
        )
    )
    return engine.run()[rid]


# --------------------------------------------------------- cache unit tests


class TestPrefixCacheUnit:
    def _fill(self, alloc, tokens):
        """Write a token-length chain of dummy KV and return the paged cache."""
        paged = PagedKVCache(alloc)
        h_kv, d_h = alloc.num_kv_heads, alloc.head_dim
        for layer in range(alloc.num_layers):
            keys = np.full((h_kv, len(tokens), d_h), float(layer + 1))
            paged[layer].append(keys, keys)
        return paged

    def test_insert_then_match_longest_prefix(self):
        alloc = BlockAllocator(1, 1, 4, block_size=4)
        cache = PrefixCache(alloc)
        tokens = list(range(100, 110))  # 2 full blocks + 2 spare tokens
        paged = self._fill(alloc, tokens)
        assert cache.insert(tokens, paged.table.block_ids) == 2

        match = cache.match(tokens)
        assert match is not None and match.matched_tokens == 8
        assert match.block_ids == paged.table.block_ids[:2]
        # Diverging after the first block matches only that block.
        other = tokens[:4] + [0, 0, 0, 0]
        match = cache.match(other)
        assert match is not None and match.matched_tokens == 4
        assert cache.match([1, 2, 3, 4]) is None
        assert cache.stats.hits == 2 and cache.stats.queries == 3

    def test_hash_collision_falls_back_to_miss(self):
        alloc = BlockAllocator(1, 1, 4, block_size=4)
        cache = PrefixCache(alloc, hash_fn=lambda parent, tokens: b"same")
        first = [1, 2, 3, 4]
        second = [9, 9, 9, 9]
        paged = self._fill(alloc, first)
        cache.insert(first, paged.table.block_ids)
        # The colliding chain cannot be cached (slot taken) ...
        paged2 = self._fill(alloc, second)
        assert cache.insert(second, paged2.table.block_ids) == 0
        # ... and its lookup is a verified miss, not a silent wrong hit.
        assert cache.match(second) is None
        assert cache.match(first).matched_tokens == 4
        assert cache.stats.collisions >= 2

    def test_eviction_frees_lru_leaves_only(self):
        alloc = BlockAllocator(1, 1, 4, block_size=4)
        cache = PrefixCache(alloc)
        paged = self._fill(alloc, list(range(8)))
        cache.insert(list(range(8)), paged.table.block_ids)
        paged.release()  # only the cache references the chain now
        assert alloc.num_allocated == 2
        # One block: evicts the chain tail (a leaf), never the root first.
        assert cache.evict(1) == 1
        assert cache.match(list(range(8))).matched_tokens == 4
        assert cache.evict(10) == 1  # the root became a leaf
        assert cache.match(list(range(8))) is None
        assert alloc.num_allocated == 0

    def test_eviction_skips_blocks_held_by_requests(self):
        alloc = BlockAllocator(1, 1, 4, block_size=4)
        cache = PrefixCache(alloc)
        paged = self._fill(alloc, list(range(4)))
        cache.insert(list(range(4)), paged.table.block_ids)
        assert cache.evict(1) == 0  # the request still holds the block
        paged.release()
        assert cache.evict(1) == 1

    def test_pool_exhaustion_mid_admission_evicts_cached_chain(self, small_model):
        """An admission that outgrows the pool reclaims cold cached blocks."""
        engine = _engine(
            small_model, chunk=None, caching=True,
            kv_block_size=32, kv_pool_blocks=8,
        )
        rng = np.random.default_rng(5)
        first = rng.integers(4, 256, size=128).tolist()   # 4 blocks
        out = _serve(engine, first, None, max_new_tokens=2)
        engine.release(out.request_id)  # blocks now held by the cache only
        assert len(engine.prefix_cache) > 0
        # A different prompt needing 7 blocks (+1 for decode) forces
        # eviction of the cold cached chain mid-admission.
        second = rng.integers(4, 256, size=224).tolist()
        out2 = _serve(engine, second, None, max_new_tokens=2)
        assert out2.finished
        # With the disk spill tier (default) the cold chain is demoted, not
        # dropped: the pool blocks come back either way.
        stats = engine.prefix_cache.stats
        assert stats.evicted_blocks + stats.spilled_blocks > 0
        # With everything pinned (no release), the same pressure is fatal.
        third = rng.integers(4, 256, size=256).tolist()
        with pytest.raises(CapacityError):
            _serve(engine, third, None, max_new_tokens=2)

    def test_insert_rejects_misaligned_acc_boundary(self):
        alloc = BlockAllocator(1, 1, 4, block_size=4)
        cache = PrefixCache(alloc)
        paged = self._fill(alloc, list(range(8)))
        with pytest.raises(ConfigurationError):
            cache.insert(
                list(range(8)), paged.table.block_ids,
                acc_boundary=3, acc_scores=[np.zeros((1, 3))],
            )


# ----------------------------------------------- engine byte-identity tests


class TestEngineByteIdentity:
    """Cold vs prefix-cache-hit decode outputs, asserted per policy."""

    @pytest.mark.parametrize(
        "policy_name", [None, "pqcache", "snapkv", "h2o", "sparq"]
    )
    def test_warm_equals_cold(self, small_model, prompt, policy_name):
        engine = _engine(small_model)
        cold = _serve(engine, prompt, policy_name)
        warm = _serve(engine, prompt, policy_name)
        assert warm.metrics.cached_prefix_tokens > 0, "expected a cache hit"
        assert warm.token_ids == cold.token_ids
        assert np.array_equal(warm.logits, cold.logits)
        # And both equal an engine that has no prefix cache at all.
        plain = _serve(_engine(small_model, caching=False), prompt, policy_name)
        assert plain.token_ids == cold.token_ids
        assert np.array_equal(plain.logits, cold.logits)

    def test_pqcache_artifacts_are_attached_not_recomputed(
        self, small_model, prompt
    ):
        engine = _engine(small_model)
        _serve(engine, prompt, "pqcache")
        state_probe = {}

        def factory():
            budget = SelectionBudget(
                token_ratio=0.25, num_initial=4, num_local=16
            )
            policy = PQCachePolicy(budget, PQCacheConfig())
            state_probe["policy"] = policy
            return policy

        rid = engine.submit(
            Request(
                prompt_ids=list(prompt),
                sampling=SamplingParams(max_new_tokens=4),
                policy_spec=PolicySpec.from_factory(factory),
            )
        )
        engine.run()
        policy = state_probe["policy"]
        # The warm policy attached the producer's snapshot: the sketch fit
        # was skipped, so no from-scratch k-means iterations were spent
        # before the final refinement.
        assert policy.manager is not None
        assert policy.manager.sketch_upto > 0

    def test_unchunked_engine_also_reuses(self, small_model, prompt):
        engine = _engine(small_model, chunk=None)
        cold = _serve(engine, prompt, "pqcache")
        warm = _serve(engine, prompt, "pqcache")
        assert warm.metrics.cached_prefix_tokens > 0
        assert warm.token_ids == cold.token_ids
        assert np.array_equal(warm.logits, cold.logits)

    def test_extension_prompt_attach_matches_cold(self, small_model, prompt):
        """Producer prompt is a strict prefix of the consumer's (unchunked).

        The PQ sketch is fitted at a schedule-independent boundary (exactly
        ``sketch_tokens``), so the attached snapshot equals what the
        consumer's own cold pipeline would have built — even though producer
        and consumer prefill with different chunk shapes.
        """
        extended = list(prompt) + list(prompt[:256])
        warm_engine = _engine(small_model, chunk=None)
        _serve(warm_engine, prompt, "pqcache")
        warm = _serve(warm_engine, extended, "pqcache")
        cold = _serve(_engine(small_model, chunk=None), extended, "pqcache")
        assert warm.metrics.cached_prefix_tokens >= 640
        assert warm.token_ids == cold.token_ids
        assert np.array_equal(warm.logits, cold.logits)

    def test_one_shot_policy_gets_kv_only_reuse(self, small_model, prompt):
        """``incremental=False``: PQ artifact reuse is refused (fingerprint
        None), KV-block reuse still applies, and outputs match even an
        engine with no prefix cache at all (one-shot build everywhere)."""
        engine = _engine(small_model, chunk=None)
        _serve_opts = dict(max_new_tokens=6)
        budget = SelectionBudget(token_ratio=0.25, num_initial=4, num_local=16)

        def run(eng, prompt_ids):
            rid = eng.submit(
                Request(
                    prompt_ids=list(prompt_ids),
                    sampling=SamplingParams(**_serve_opts),
                    policy_spec=PolicySpec.named(
                        "pqcache", budget, incremental=False
                    ),
                )
            )
            return eng.run()[rid]

        run(engine, prompt)
        warm = run(engine, prompt)
        plain = run(_engine(small_model, caching=False, chunk=None), prompt)
        assert warm.metrics.cached_prefix_tokens > 0
        assert warm.token_ids == plain.token_ids
        assert np.array_equal(warm.logits, plain.logits)

    def test_partially_shared_prompt(self, small_model, prompt):
        """Divergence mid-prompt: reuse covers only the shared blocks."""
        engine = _engine(small_model)
        _serve(engine, prompt, "pqcache")
        forked = list(prompt)
        forked[400:] = np.random.default_rng(9).integers(
            4, 256, size=len(prompt) - 400
        ).tolist()
        cold = _serve(_engine(small_model), forked, "pqcache")
        warm = _serve(engine, forked, "pqcache")
        assert 0 < warm.metrics.cached_prefix_tokens <= 400
        assert warm.token_ids == cold.token_ids
        assert np.array_equal(warm.logits, cold.logits)


# ------------------------------------------------------- multi-turn serving


class TestMultiTurnServing:
    def test_turns_reuse_history_and_generated_blocks(self, small_model):
        """Opt-in decoded-block caching extends reuse into answer regions.

        ``cache_decoded_blocks`` is approximate by design (decoded KV is
        policy- and kernel-dependent), so this test asserts reuse coverage
        and metrics — byte-identity is only guaranteed for prompt-region
        reuse, which the TestEngineByteIdentity cases cover.
        """
        rng = np.random.default_rng(21)
        system = rng.integers(4, 256, size=640).tolist()
        engine = _engine(
            small_model, kv_block_size=16, cache_decoded_blocks=True
        )

        history = list(system)
        hit_tokens = []
        for turn in range(3):
            prompt_t = history + rng.integers(4, 256, size=48).tolist()
            out = _serve(engine, prompt_t, "pqcache", max_new_tokens=20)
            hit_tokens.append(out.metrics.cached_prefix_tokens)
            history = prompt_t + out.token_ids

        assert hit_tokens[0] == 0
        # Turn 2 reuses at least turn 1's full prompt region; turn 3 grows
        # further and covers turn 2's *generated* tokens too (block 16 ⇒ the
        # 20-token answers fill at least one cached block each).
        assert hit_tokens[1] >= 640
        assert hit_tokens[2] > hit_tokens[1] + 48
        assert engine.metrics.prefix_cache_hit_rate == pytest.approx(2 / 3)
        assert engine.metrics.prefix_cache_hit_tokens == sum(hit_tokens)

    @pytest.mark.parametrize("policy_name", ["pqcache", "snapkv"])
    def test_default_multiturn_stays_byte_identical(
        self, small_model, policy_name
    ):
        """Turn 2 embedding turn 1's answer: warm == cold by default.

        With decoded-block caching off (the default) the warm turn-2 request
        reuses only the turn-1 *prompt* region — whose KV a cold prefill
        reproduces bit-for-bit — never the policy-dependent decoded region,
        so the outputs must match a cold engine exactly.
        """
        rng = np.random.default_rng(33)
        prompt_1 = rng.integers(4, 256, size=304).tolist()
        engine = _engine(small_model, kv_block_size=16)
        out_1 = _serve(engine, prompt_1, policy_name, max_new_tokens=20)
        prompt_2 = (
            prompt_1 + out_1.token_ids + rng.integers(4, 256, size=40).tolist()
        )
        warm = _serve(engine, prompt_2, policy_name, max_new_tokens=8)
        cold = _serve(
            _engine(small_model, caching=False), prompt_2, policy_name,
            max_new_tokens=8,
        )
        assert 0 < warm.metrics.cached_prefix_tokens <= len(prompt_1)
        assert warm.token_ids == cold.token_ids
        assert np.array_equal(warm.logits, cold.logits)

    def test_release_and_trim_return_blocks(self, small_model):
        engine = _engine(small_model, kv_block_size=32, max_retained_outputs=1)
        rng = np.random.default_rng(2)
        alloc = engine.block_allocator
        for _ in range(3):
            _serve(
                engine, rng.integers(4, 256, size=96).tolist(), None,
                max_new_tokens=2,
            )
        # Only one retained output pins blocks beyond the cache's own refs:
        # every block is referenced by the cache and at most one request.
        for node_blocks in [engine.prefix_cache]:
            assert len(node_blocks) > 0
        for block_id in list(alloc._refcounts):
            assert alloc.refcount(block_id) <= 2

    def test_abort_mid_prefill_releases_blocks(self, small_model, prompt):
        engine = _engine(small_model, chunk=128)
        rid = engine.submit(
            Request(
                prompt_ids=list(prompt),
                sampling=SamplingParams(max_new_tokens=2),
            )
        )
        engine.step()  # admission + first chunk only
        in_use = engine.block_allocator.num_allocated
        assert in_use > 0
        engine.abort(rid)
        assert engine.block_allocator.num_allocated == 0


# ------------------------------------------------------------- PQ snapshots


class TestPQSnapshotSemantics:
    def test_snapshot_is_immune_to_producer_refine_and_appends(
        self, small_model, prompt
    ):
        """COW: the cached snapshot must not change under the producer."""
        engine = _engine(small_model)
        _serve(engine, prompt, "pqcache", max_new_tokens=24)
        match = engine.prefix_cache.match(
            prompt, ("pqcache", PQCacheConfig(), 256)
        )
        assert match is not None and match.pq_snapshot is not None
        snap = match.pq_snapshot
        codes_before = [c.copy() for c in snap.codes]
        centroids_before = [
            [pq.centroids.copy() for pq in layer] for layer in snap.quantizers
        ]
        # Serve more traffic through the same chain (attach + refine + decode
        # appends on the consumer side, refine + appends happened on the
        # producer side already).
        _serve(engine, prompt, "pqcache", max_new_tokens=24)
        for before, after in zip(codes_before, snap.codes):
            assert np.array_equal(before, after)
        for layer_before, layer_now in zip(centroids_before, snap.quantizers):
            for c_before, pq in zip(layer_before, layer_now):
                assert np.array_equal(c_before, pq.centroids)
        assert snap.total_attaches >= 1

    def test_snapshot_refcounting_balanced_by_engine(self, small_model, prompt):
        """Every attach is released at request teardown: no live refs leak."""
        engine = _engine(small_model)
        _serve(engine, prompt, "pqcache")
        match = engine.prefix_cache.match(
            prompt, ("pqcache", PQCacheConfig(), 256)
        )
        snap = match.pq_snapshot
        total = snap.total_attaches
        _serve(engine, prompt, "pqcache")
        assert snap.total_attaches == total + 1
        assert snap.attach_count == 0  # released when the request finished
        with pytest.raises(ConfigurationError):
            snap.release()  # unbalanced release is a caller bug

    def test_shallow_foreign_snapshot_cannot_poison_consumer(self, small_model):
        """Regression: a snapshot found on a shallow node must be clamped.

        Producer A shares only one block with the consumer and then
        diverges for hundreds of tokens — its (long) pre-refine snapshot
        lands on the shared depth-1 node.  Producer B shares three blocks.
        The match must never prefer A's snapshot just because it is longer:
        its codes beyond the first block encode A's diverging suffix, and
        adopting them would silently corrupt the consumer's PQ index.  The
        consumer's decode output must stay byte-identical to a cold run.
        """
        rng = np.random.default_rng(17)
        shared = rng.integers(4, 256, size=192).tolist()
        producer_a = shared[:64] + rng.integers(4, 256, size=260).tolist()
        producer_b = shared[:192] + rng.integers(4, 256, size=40).tolist()
        consumer = shared[:192] + rng.integers(4, 256, size=80).tolist()

        def spec():
            budget = SelectionBudget(token_ratio=0.25, num_initial=4, num_local=16)
            return PolicySpec.named("pqcache", budget, sketch_tokens=64)

        def serve(engine, prompt):
            rid = engine.submit(Request(
                prompt_ids=list(prompt),
                sampling=SamplingParams(max_new_tokens=6),
                policy_spec=spec(),
            ))
            return engine.run()[rid]

        cold = serve(_engine(small_model), consumer)
        engine = _engine(small_model)
        serve(engine, producer_a)
        serve(engine, producer_b)
        warm = serve(engine, consumer)
        assert warm.metrics.cached_prefix_tokens == 192
        assert warm.token_ids == cold.token_ids
        assert np.array_equal(warm.logits, cold.logits)
