"""Tests for chunked prefill in the serving engine and scheduler.

Covers the new ``PREFILLING`` request state, the per-step prefill-token
budget (max-min fair allocation), per-chunk clock accounting, incremental PQ
construction driven by the engine, request abort, and the teacher-forced
TTFT regression fix.
"""

import numpy as np
import pytest

from repro.baselines import POLICY_NAMES, SelectionBudget
from repro.errors import ConfigurationError
from repro.llm import ModelConfig, TransformerLM
from repro.serve import (
    ContinuousBatchingScheduler,
    InferenceEngine,
    PolicySpec,
    Request,
    RequestStatus,
    SamplingParams,
    SchedulerConfig,
)

BUDGET = SelectionBudget(token_ratio=0.2, comm_ratio=1.0 / 64.0,
                         num_initial=4, num_local=16)


def make_prompts(config, lengths, seed=9):
    rng = np.random.default_rng(seed)
    return [rng.integers(4, config.vocab_size, size=n).tolist() for n in lengths]


class _Item:
    """Minimal object satisfying the scheduler's chunked-mode protocol."""

    def __init__(self, name, remaining):
        self.name = name
        self.remaining_prefill_tokens = remaining

    def __repr__(self):
        return f"_Item({self.name}, {self.remaining_prefill_tokens})"


class TestChunkedScheduler:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(max_prefill_chunk_tokens=0)
        assert SchedulerConfig().chunked_prefill_enabled is False
        assert SchedulerConfig(max_prefill_chunk_tokens=64).chunked_prefill_enabled

    def test_budget_split_max_min_fair(self):
        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(max_batch_size=4, max_prefills_per_step=4,
                            max_prefill_chunk_tokens=512)
        )
        long = _Item("long", 4000)
        short = _Item("short", 64)
        mid = _Item("mid", 300)
        for item in (long, short, mid):
            scheduler.submit(item)
        decision = scheduler.schedule()
        grants = {item.name: tokens for item, tokens in decision.prefill_chunks}
        # Water-filling: the fully-satisfiable demand is served whole, the
        # remaining budget splits evenly between the two larger demands.
        assert grants["short"] == 64
        assert grants["mid"] == 224
        assert grants["long"] == 224
        assert sum(grants.values()) == 512
        # Short finishes with this allocation -> it decodes this very step.
        short.remaining_prefill_tokens = 0
        assert decision.decodes == [short] or short in decision.decodes

    def test_processing_order_prefers_small_demands(self):
        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(max_batch_size=4, max_prefills_per_step=4,
                            max_prefill_chunk_tokens=100)
        )
        long = _Item("long", 1000)
        short = _Item("short", 30)
        scheduler.submit(long)
        scheduler.submit(short)
        decision = scheduler.schedule()
        assert [item.name for item, _ in decision.prefill_chunks] == ["short", "long"]

    def test_fully_prefilled_items_decode_not_chunk(self):
        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(max_batch_size=4, max_prefill_chunk_tokens=100)
        )
        done = _Item("done", 0)
        busy = _Item("busy", 500)
        scheduler.submit(done)
        scheduler.submit(busy)
        decision = scheduler.schedule()
        assert [item.name for item, _ in decision.prefill_chunks] == ["busy"]
        assert done in decision.decodes and busy not in decision.decodes

    def test_remove_from_either_queue(self):
        scheduler = ContinuousBatchingScheduler(
            SchedulerConfig(max_batch_size=1, max_prefill_chunk_tokens=10)
        )
        a, b = _Item("a", 5), _Item("b", 5)
        scheduler.submit(a)
        scheduler.submit(b)
        scheduler.schedule()  # a running, b waiting
        scheduler.remove(a)
        scheduler.remove(b)
        assert not scheduler.has_work
        with pytest.raises(ConfigurationError):
            scheduler.remove(a)


class TestChunkedEngineEquivalence:
    @pytest.mark.parametrize("policy_name", [n for n in POLICY_NAMES if n != "pqcache"])
    def test_chunked_matches_unchunked_bytewise(self, model, tiny_config, policy_name):
        """Chunked prefill is transparent: byte-identical tokens and logits
        for every policy without incremental construction."""
        prompts = make_prompts(tiny_config, (96, 132))
        results = {}
        for chunk_tokens in (None, 40):
            engine = InferenceEngine(
                model,
                scheduler_config=SchedulerConfig(
                    max_batch_size=2, max_prefill_chunk_tokens=chunk_tokens
                ),
            )
            requests = [
                Request(prompt_ids=prompt,
                        sampling=SamplingParams(max_new_tokens=3),
                        policy_spec=PolicySpec.named(policy_name, BUDGET))
                for prompt in prompts
            ]
            results[chunk_tokens] = (requests, engine.run(requests))
        (ref_requests, ref_outputs), (requests, outputs) = results[None], results[40]
        for ref_request, request in zip(ref_requests, requests):
            reference = ref_outputs[ref_request.request_id]
            chunked = outputs[request.request_id]
            assert chunked.token_ids == reference.token_ids
            assert np.array_equal(chunked.logits, reference.logits)
            assert chunked.metrics.prefill_chunks > 1

    def test_pqcache_non_incremental_matches_unchunked(self, model, tiny_config):
        prompt = make_prompts(tiny_config, (128,))[0]
        outputs = {}
        for chunk_tokens in (None, 48):
            engine = InferenceEngine(
                model,
                scheduler_config=SchedulerConfig(
                    max_batch_size=1, max_prefill_chunk_tokens=chunk_tokens
                ),
            )
            request = Request(prompt_ids=prompt,
                              sampling=SamplingParams(max_new_tokens=3),
                              policy_spec=PolicySpec.named(
                                  "pqcache", BUDGET, incremental=False))
            outputs[chunk_tokens] = engine.run([request])[request.request_id]
        assert outputs[48].token_ids == outputs[None].token_ids
        assert np.array_equal(outputs[48].logits, outputs[None].logits)


class TestIncrementalPqServing:
    def test_incremental_pqcache_builds_from_chunks(self, model, tiny_config):
        """The engine's chunk hooks drive sketch-fit + stream-encode + refine;
        the finished request has a fully-encoded PQ index."""
        prompt = make_prompts(tiny_config, (160,))[0]
        engine = InferenceEngine(
            model,
            scheduler_config=SchedulerConfig(
                max_batch_size=1, max_prefill_chunk_tokens=48
            ),
        )
        spec = PolicySpec.named("pqcache", BUDGET, sketch_tokens=64)
        request = Request(prompt_ids=prompt,
                          sampling=SamplingParams(max_new_tokens=3),
                          policy_spec=spec)
        # Keep a handle on the policy the engine builds.
        built = []
        original_build = spec.build

        def capture():
            policy = original_build()
            built.append(policy)
            return policy

        spec.build = capture
        out = engine.run([request])[request.request_id]
        assert out.finish_reason == "length"
        assert len(out.token_ids) == 3
        assert out.metrics.prefill_chunks == 4
        policy = built[0]
        assert policy.manager is not None and policy.manager.is_built
        # All prompt tokens (plus decoded tokens that left the local window)
        # carry PQ codes, aligned from position 0.
        assert policy.manager.num_codes(0) >= 160 - BUDGET.num_local

    def test_incremental_selections_are_plausible(self, model, tiny_config):
        """Incremental construction may pick different tokens than one-shot
        (different K-Means optima) but selections must respect the budget
        segments exactly like the one-shot index."""
        prompt = make_prompts(tiny_config, (140,))[0]
        engine = InferenceEngine(
            model,
            scheduler_config=SchedulerConfig(
                max_batch_size=1, max_prefill_chunk_tokens=40
            ),
        )
        request = Request(prompt_ids=prompt,
                          sampling=SamplingParams(max_new_tokens=2),
                          policy_spec=PolicySpec.named(
                              "pqcache", BUDGET, sketch_tokens=64))
        out = engine.run([request])[request.request_id]
        for step in out.selections:
            for layer_selection in step:
                assert layer_selection is not None
                for per_head in layer_selection:
                    assert per_head.size > 0
                    assert per_head.max() < 140 + 2


class TestChunkedClockAndTtft:
    def test_short_prompt_not_blocked_by_long_prefill(self, model, tiny_config):
        """A short prompt submitted behind a long one gets a far better TTFT
        with chunking; the long prompt pays the same prefill charge (the
        short request's interleaved work lands on the shared clock, but the
        long prompt's own prefill seconds are identical)."""
        long_prompt = make_prompts(tiny_config, (320,))[0]
        short_prompt = make_prompts(tiny_config, (48,), seed=5)[0]

        def serve(chunk_tokens):
            engine = InferenceEngine(
                model,
                scheduler_config=SchedulerConfig(
                    max_batch_size=2, max_prefill_chunk_tokens=chunk_tokens
                ),
            )
            long_request = Request(prompt_ids=long_prompt,
                                   sampling=SamplingParams(max_new_tokens=1))
            short_request = Request(prompt_ids=short_prompt,
                                    sampling=SamplingParams(max_new_tokens=1))
            engine.submit(long_request)
            engine.submit(short_request)
            outputs = engine.run()
            return (outputs[short_request.request_id].metrics,
                    outputs[long_request.request_id].metrics)

        short_unchunked, long_unchunked = serve(None)
        short_chunked, long_chunked = serve(64)
        assert short_chunked.ttft < short_unchunked.ttft / 2
        assert long_chunked.prefill_seconds == pytest.approx(
            long_unchunked.prefill_seconds, rel=1e-9
        )

    @pytest.mark.parametrize("policy_name,tolerance", [
        (None, 1e-9),      # pure compute: telescopes exactly
        ("h2o", 1e-9),     # dense-score traffic telescopes exactly too
        ("infllm", 0.05),  # block setup overlaps; small residual shift
    ])
    def test_chunked_clock_charges_match_monolithic(self, model, tiny_config,
                                                    policy_name, tolerance):
        """The telescoping chunk FLOP (and H2O score-byte) model: a request's
        prefill charge does not change just because chunking is on."""
        prompt = make_prompts(tiny_config, (200,))[0]
        seconds = {}
        for chunk_tokens in (None, 64):
            engine = InferenceEngine(
                model,
                scheduler_config=SchedulerConfig(
                    max_batch_size=1, max_prefill_chunk_tokens=chunk_tokens
                ),
            )
            spec = (PolicySpec.named(policy_name, BUDGET)
                    if policy_name is not None else None)
            request = Request(prompt_ids=prompt,
                              sampling=SamplingParams(max_new_tokens=1),
                              policy_spec=spec)
            out = engine.run([request])[request.request_id]
            seconds[chunk_tokens] = out.metrics.prefill_seconds
        assert seconds[64] == pytest.approx(seconds[None], rel=tolerance)

    def test_prefilling_status_between_steps(self, model, tiny_config):
        prompt = make_prompts(tiny_config, (96,))[0]
        engine = InferenceEngine(
            model,
            scheduler_config=SchedulerConfig(
                max_batch_size=1, max_prefill_chunk_tokens=32
            ),
        )
        request = Request(prompt_ids=prompt, sampling=SamplingParams(max_new_tokens=1))
        engine.submit(request)
        outputs = engine.step()
        state = engine._states[request.request_id]
        assert state.status is RequestStatus.PREFILLING
        assert state.remaining_prefill_tokens == 96 - 32
        # Streaming heartbeat for the prefilling request, no tokens yet.
        assert [o.request_id for o in outputs] == [request.request_id]
        assert outputs[0].new_token_ids == []
        engine.run()
        assert engine.final_output(request.request_id).finished


class TestAbort:
    def test_abort_waiting_request(self, model, tiny_config):
        prompts = make_prompts(tiny_config, (64, 64))
        engine = InferenceEngine(
            model, scheduler_config=SchedulerConfig(max_batch_size=1)
        )
        first = Request(prompt_ids=prompts[0], sampling=SamplingParams(max_new_tokens=2))
        second = Request(prompt_ids=prompts[1], sampling=SamplingParams(max_new_tokens=2))
        engine.submit(first)
        engine.submit(second)
        out = engine.abort(second.request_id)
        assert out.finished and out.finish_reason == "aborted"
        assert out.token_ids == []
        assert engine.metrics.requests_aborted == 1
        finals = engine.run()
        assert list(finals) == [first.request_id]
        assert engine.final_output(second.request_id).finish_reason == "aborted"

    def test_abort_between_prefill_chunks(self, model, tiny_config):
        """Aborting a mid-prefill request frees its slot for the next one."""
        prompts = make_prompts(tiny_config, (160, 64))
        engine = InferenceEngine(
            model,
            scheduler_config=SchedulerConfig(
                max_batch_size=1, max_prefill_chunk_tokens=32
            ),
        )
        victim = Request(prompt_ids=prompts[0], sampling=SamplingParams(max_new_tokens=2))
        waiter = Request(prompt_ids=prompts[1], sampling=SamplingParams(max_new_tokens=2))
        engine.submit(victim)
        engine.submit(waiter)
        engine.step()
        state = engine._states[victim.request_id]
        assert state.status is RequestStatus.PREFILLING
        assert 0 < state.remaining_prefill_tokens < 160

        out = engine.abort(victim.request_id)
        assert out.finish_reason == "aborted" and out.finished
        assert out.prefill is None  # the partial KVCache was dropped
        assert engine.num_running == 0 and engine.num_waiting == 1

        finals = engine.run()
        assert waiter.request_id in finals
        assert finals[waiter.request_id].finish_reason == "length"
        assert engine.metrics.requests_aborted == 1
        assert engine.metrics.requests_finished == 1

    def test_abort_decoding_request_keeps_tokens(self, model, tiny_config):
        prompt = make_prompts(tiny_config, (72,))[0]
        engine = InferenceEngine(model)
        request = Request(prompt_ids=prompt, sampling=SamplingParams(max_new_tokens=8))
        engine.submit(request)
        engine.step()  # prefill + first decode round
        out = engine.abort(request.request_id)
        assert out.finish_reason == "aborted"
        assert len(out.token_ids) >= 1
        assert not engine.has_unfinished

    def test_abort_finished_is_idempotent_noop(self, model, tiny_config):
        """Aborting a terminal request is a no-op (same-step shed/finish
        races must not blow up); only a never-submitted id raises."""
        prompt = make_prompts(tiny_config, (64,))[0]
        engine = InferenceEngine(model)
        request = Request(prompt_ids=prompt, sampling=SamplingParams(max_new_tokens=1))
        finals = engine.run([request])
        out = engine.abort(request.request_id)  # already finished: no-op
        assert out is finals[request.request_id]
        assert out.finish_reason == "length"  # the terminal outcome stands
        assert engine.metrics.requests_aborted == 0
        with pytest.raises(ConfigurationError):
            engine.abort("no-such-request")

    def test_abort_finished_unretained_returns_none(self, model, tiny_config):
        prompt = make_prompts(tiny_config, (64,))[0]
        engine = InferenceEngine(model, max_retained_outputs=0)
        request = Request(prompt_ids=prompt, sampling=SamplingParams(max_new_tokens=1))
        engine.run([request])
        assert engine.abort(request.request_id) is None
        assert engine.metrics.requests_aborted == 0


class TestForcedTtftRegression:
    def test_teacher_forced_requests_report_ttft(self, model, tiny_config):
        """Regression: forced requests used to never set first_token_time,
        reporting TTFT as 0/None for every eval-harness run."""
        prompt = make_prompts(tiny_config, (96,))[0]
        engine = InferenceEngine(model)
        request = Request(prompt_ids=prompt, forced_decode_ids=[5, 6, 7],
                          policy_spec=PolicySpec.named("pqcache", BUDGET))
        out = engine.run([request])[request.request_id]
        assert out.metrics.first_token_time is not None
        assert out.metrics.ttft is not None and out.metrics.ttft > 0.0
        # TTFT covers exactly the prefill phase for a forced request.
        assert out.metrics.ttft == pytest.approx(
            out.metrics.prefill_seconds, rel=1e-9
        )

    def test_forced_ttft_under_chunked_prefill(self, model, tiny_config):
        prompt = make_prompts(tiny_config, (96,))[0]
        engine = InferenceEngine(
            model,
            scheduler_config=SchedulerConfig(
                max_batch_size=1, max_prefill_chunk_tokens=32
            ),
        )
        request = Request(prompt_ids=prompt, forced_decode_ids=[5, 6])
        out = engine.run([request])[request.request_id]
        assert out.metrics.ttft is not None and out.metrics.ttft > 0.0
        assert out.metrics.prefill_chunks == 3
