"""Tests for the attention kernels (causal prefill + selective decode)."""

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.llm.attention import (
    attention_scores_single_query,
    causal_attention,
    decode_attention,
    expand_kv_heads,
)
from repro.utils import softmax


class TestExpandKvHeads:
    def test_repeats_consecutively(self, rng):
        kv = rng.normal(size=(2, 3, 4))
        expanded = expand_kv_heads(kv, 2)
        assert expanded.shape == (4, 3, 4)
        assert np.allclose(expanded[0], expanded[1])
        assert np.allclose(expanded[2], expanded[3])

    def test_invalid_group(self, rng):
        with pytest.raises(DimensionError):
            expand_kv_heads(rng.normal(size=(2, 3, 4)), 0)


class TestCausalAttention:
    def test_output_shape(self, rng):
        q = rng.normal(size=(4, 6, 8))
        k = rng.normal(size=(2, 6, 8))
        v = rng.normal(size=(2, 6, 8))
        out = causal_attention(q, k, v)
        assert out.shape == (4, 6, 8)

    def test_scores_are_causal(self, rng):
        q = rng.normal(size=(2, 5, 4))
        k = rng.normal(size=(2, 5, 4))
        v = rng.normal(size=(2, 5, 4))
        _, scores = causal_attention(q, k, v, return_scores=True)
        upper = np.triu(np.ones((5, 5), dtype=bool), k=1)
        assert np.allclose(scores[:, upper], 0.0)

    def test_scores_rows_sum_to_one(self, rng):
        q = rng.normal(size=(2, 5, 4))
        k = rng.normal(size=(2, 5, 4))
        v = rng.normal(size=(2, 5, 4))
        _, scores = causal_attention(q, k, v, return_scores=True)
        assert np.allclose(scores.sum(axis=-1), 1.0)

    def test_first_token_attends_only_to_itself(self, rng):
        q = rng.normal(size=(1, 4, 4))
        k = rng.normal(size=(1, 4, 4))
        v = rng.normal(size=(1, 4, 4))
        out = causal_attention(q, k, v)
        assert np.allclose(out[0, 0], v[0, 0])

    def test_head_mismatch_rejected(self, rng):
        with pytest.raises(DimensionError):
            causal_attention(rng.normal(size=(3, 4, 4)), rng.normal(size=(2, 4, 4)),
                             rng.normal(size=(2, 4, 4)))


class TestDecodeAttention:
    def test_full_matches_manual_softmax(self, rng):
        query = rng.normal(size=(2, 4))
        keys = rng.normal(size=(1, 6, 4))
        values = rng.normal(size=(1, 6, 4))
        out = decode_attention(query, keys, values)
        for head in range(2):
            weights = softmax(keys[0] @ query[head] / 2.0)
            assert np.allclose(out[head], weights @ values[0])

    def test_selected_subset_shared(self, rng):
        query = rng.normal(size=(2, 4))
        keys = rng.normal(size=(2, 6, 4))
        values = rng.normal(size=(2, 6, 4))
        subset = np.array([0, 3, 5])
        out = decode_attention(query, keys, values, selected=subset)
        manual = decode_attention(query, keys[:, subset, :], values[:, subset, :])
        assert np.allclose(out, manual)

    def test_per_head_selection(self, rng):
        query = rng.normal(size=(4, 4))
        keys = rng.normal(size=(2, 6, 4))
        values = rng.normal(size=(2, 6, 4))
        per_head = [np.array([0, 1]), np.array([4, 5])]
        out = decode_attention(query, keys, values, selected=per_head)
        assert out.shape == (4, 4)

    def test_wrong_per_head_count(self, rng):
        with pytest.raises(DimensionError):
            decode_attention(rng.normal(size=(2, 4)), rng.normal(size=(2, 6, 4)),
                             rng.normal(size=(2, 6, 4)), selected=[np.array([0])])

    def test_empty_selection_gives_zero_output(self, rng):
        query = rng.normal(size=(2, 4))
        keys = rng.normal(size=(1, 6, 4))
        values = rng.normal(size=(1, 6, 4))
        out = decode_attention(query, keys, values,
                               selected=[np.empty(0, dtype=np.int64)])
        assert np.allclose(out, 0.0)

    def test_query_heads_not_multiple_of_kv_heads_rejected(self, rng):
        """Regression: ``h % h_kv != 0`` used to silently truncate the group
        size and ignore trailing query heads."""
        with pytest.raises(DimensionError):
            decode_attention(rng.normal(size=(5, 4)), rng.normal(size=(2, 6, 4)),
                             rng.normal(size=(2, 6, 4)))

    def test_selection_of_topk_tokens_approximates_full(self, rng):
        """Selecting the highest-scoring half of tokens should approximate the
        full-attention output better than selecting the lowest-scoring half."""
        query = rng.normal(size=(1, 8))
        keys = rng.normal(size=(1, 64, 8))
        values = rng.normal(size=(1, 64, 8))
        full = decode_attention(query, keys, values)
        scores = keys[0] @ query[0]
        order = np.argsort(-scores)
        best = decode_attention(query, keys, values, selected=order[:32])
        worst = decode_attention(query, keys, values, selected=order[32:])
        assert np.linalg.norm(best - full) < np.linalg.norm(worst - full)


class TestSingleQueryScores:
    def test_shape_and_scale(self, rng):
        query = rng.normal(size=(4, 8))
        keys = rng.normal(size=(2, 10, 8))
        logits = attention_scores_single_query(query, keys, group_size=2)
        assert logits.shape == (4, 10)
        manual = keys[0] @ query[0] / np.sqrt(8)
        assert np.allclose(logits[0], manual)

    def test_group_mismatch(self, rng):
        with pytest.raises(DimensionError):
            attention_scores_single_query(rng.normal(size=(4, 8)),
                                          rng.normal(size=(2, 10, 8)), group_size=3)

    def test_query_heads_not_multiple_of_kv_heads_rejected(self, rng):
        with pytest.raises(DimensionError):
            attention_scores_single_query(rng.normal(size=(5, 8)),
                                          rng.normal(size=(2, 10, 8)), group_size=2)
