"""Tiered KV placement: SwapSpace unit tests, the latency model's swap
transfers, the prefix cache's disk-spill tier, and the symmetric PQ-snapshot
hold refcounting (regression for the evict/re-insert leak)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pqcache import PQSnapshot
from repro.errors import CapacityError, ConfigurationError
from repro.llm import ModelConfig
from repro.llm.kvcache import BlockAllocator, PagedKVCache, SwapSpace
from repro.llm.kvcodec import BytePlaneCodec, IntQuantCodec, RawCodec
from repro.memory import HardwareSpec, LatencyModel, Resource
from repro.serve import PrefixCache


def make_allocator(capacity=None, block_size=4, num_layers=2, h_kv=2, d_h=8):
    return BlockAllocator(
        num_layers, h_kv, d_h, block_size=block_size, capacity_blocks=capacity
    )


def fill_blocks(alloc, n, seed=0):
    """Allocate ``n`` blocks with distinct random contents; return their ids."""
    rng = np.random.default_rng(seed)
    ids = []
    for _ in range(n):
        bid = alloc.allocate()
        alloc.block_keys(bid)[...] = rng.normal(size=alloc.block_keys(bid).shape)
        alloc.block_values(bid)[...] = rng.normal(size=alloc.block_values(bid).shape)
        ids.append(bid)
    return ids


# ------------------------------------------------------------- swap space


class TestSwapSpace:
    def test_swap_out_in_round_trips_bitwise(self):
        alloc = make_allocator()
        ids = fill_blocks(alloc, 3)
        keys = [alloc.block_keys(b).copy() for b in ids]
        values = [alloc.block_values(b).copy() for b in ids]
        space = SwapSpace()
        handle = space.swap_out(alloc, ids)
        for bid in ids:
            alloc.decref(bid)
        # Scribble over the recycled blocks to prove restore does not rely
        # on the pool still holding the old contents.
        for bid in fill_blocks(alloc, 3, seed=99):
            pass
        new_ids = space.swap_in(handle, alloc)
        assert len(new_ids) == 3
        for new_id, k, v in zip(new_ids, keys, values):
            assert np.array_equal(alloc.block_keys(new_id), k)
            assert np.array_equal(alloc.block_values(new_id), v)
            assert alloc.refcount(new_id) == 1

    def test_handle_is_single_use(self):
        alloc = make_allocator()
        space = SwapSpace()
        handle = space.swap_out(alloc, fill_blocks(alloc, 1))
        space.swap_in(handle, alloc)
        with pytest.raises(ConfigurationError):
            space.swap_in(handle, alloc)

    def test_eviction_ordering_gpu_cpu_disk(self):
        """Overflowing the CPU tier demotes its *oldest* handle to disk."""
        alloc = make_allocator()
        space = SwapSpace(cpu_capacity_blocks=3, disk_capacity_blocks=10)
        first = space.swap_out(alloc, fill_blocks(alloc, 2, seed=1))
        second = space.swap_out(alloc, fill_blocks(alloc, 1, seed=2))
        assert (first.tier, second.tier) == ("cpu", "cpu")
        third = space.swap_out(alloc, fill_blocks(alloc, 2, seed=3))
        # first (oldest) demoted to make room; second stayed; third on CPU.
        assert first.tier == "disk"
        assert second.tier == "cpu"
        assert third.tier == "cpu"
        assert space.cpu_blocks == 3 and space.disk_blocks == 2
        assert space.stats.demoted == 2

    def test_direct_disk_spill(self):
        alloc = make_allocator()
        space = SwapSpace(cpu_capacity_blocks=0)
        handle = space.swap_out(alloc, fill_blocks(alloc, 2), tier="disk")
        assert handle.tier == "disk"
        assert space.cpu_blocks == 0 and space.disk_blocks == 2

    def test_all_tiers_exhausted_raises_cleanly(self):
        alloc = make_allocator()
        space = SwapSpace(cpu_capacity_blocks=2, disk_capacity_blocks=2)
        space.swap_out(alloc, fill_blocks(alloc, 2, seed=1))          # CPU full
        space.swap_out(alloc, fill_blocks(alloc, 2, seed=2), tier="disk")
        before = space.describe()
        with pytest.raises(CapacityError):
            space.swap_out(alloc, fill_blocks(alloc, 1, seed=3))
        # A failed swap-out stores nothing and demotes nothing it cannot fit.
        assert space.describe()["cpu_blocks"] == before["cpu_blocks"]
        assert space.describe()["disk_blocks"] == before["disk_blocks"]

    def test_swap_in_pool_exhaustion_keeps_handle(self):
        alloc = make_allocator(capacity=2)
        space = SwapSpace()
        handle = space.swap_out(alloc, fill_blocks(alloc, 2))
        # Pool still full (refs not dropped): swap-in cannot allocate.
        with pytest.raises(CapacityError):
            space.swap_in(handle, alloc)
        assert space.cpu_blocks == 2  # handle still parked
        assert alloc.num_allocated == 2  # no leaked partial allocations

    def test_shared_blocks_are_pinned_not_copied(self):
        """Swap-out of a shared block keeps it GPU-resident by reference."""
        alloc = make_allocator()
        space = SwapSpace(cpu_capacity_blocks=1)  # room for 1 stored block
        own, shared = fill_blocks(alloc, 2)
        alloc.incref(shared)  # someone else (a prefix cache) holds it too
        handle = space.swap_out(alloc, [own, shared])
        assert handle.stored_blocks == 1 and handle.pinned_blocks == 1
        assert space.cpu_blocks == 1  # the pinned block occupies no tier room
        assert alloc.refcount(shared) == 3  # other holder + caller + pin
        alloc.decref(own)
        alloc.decref(shared)  # the caller releases its table
        new_ids = space.swap_in(handle, alloc)
        assert new_ids[1] == shared  # the very same block comes back
        assert alloc.refcount(shared) == 2  # other holder + restored table
        assert alloc.refcount(new_ids[0]) == 1

    def test_discard_releases_pins(self):
        alloc = make_allocator()
        space = SwapSpace()
        (shared,) = fill_blocks(alloc, 1)
        alloc.incref(shared)
        handle = space.swap_out(alloc, [shared])
        alloc.decref(shared)  # caller's table reference
        assert alloc.refcount(shared) == 2  # other holder + pin
        space.discard(handle)
        assert alloc.refcount(shared) == 1  # pin released

    def test_materialize_pins_copies_and_unpins(self):
        alloc = make_allocator()
        space = SwapSpace()
        (shared,) = fill_blocks(alloc, 1)
        keys = alloc.block_keys(shared).copy()
        alloc.incref(shared)
        handle = space.swap_out(alloc, [shared])
        alloc.decref(shared)
        assert space.materialize_pins(handle) == 1
        assert handle.pinned_blocks == 0 and handle.stored_blocks == 1
        assert alloc.refcount(shared) == 1  # pin gone; other holder remains
        alloc.decref(shared)  # other holder drops it; block id recycled
        new_ids = space.swap_in(handle, alloc)
        assert np.array_equal(alloc.block_keys(new_ids[0]), keys)

    def test_discard_and_validation(self):
        alloc = make_allocator()
        space = SwapSpace()
        handle = space.swap_out(alloc, fill_blocks(alloc, 2))
        space.discard(handle)
        assert space.cpu_blocks == 0
        assert space.stats.discarded == 2
        space.discard(handle)  # idempotent
        with pytest.raises(ConfigurationError):
            space.swap_out(alloc, [], tier="tape")
        with pytest.raises(ConfigurationError):
            SwapSpace(cpu_capacity_blocks=-1)


# ------------------------------------------------------- codec wire billing


class TestSwapSpaceCodec:
    def test_byteplane_swap_round_trips_bitwise(self):
        alloc = make_allocator()
        ids = fill_blocks(alloc, 3)
        keys = [alloc.block_keys(b).copy() for b in ids]
        space = SwapSpace(codec=BytePlaneCodec())
        handle = space.swap_out(alloc, ids)
        for bid in ids:
            alloc.decref(bid)
        fill_blocks(alloc, 3, seed=99)  # recycle + scribble
        new_ids = space.swap_in(handle, alloc)
        for new_id, k in zip(new_ids, keys):
            assert np.array_equal(alloc.block_keys(new_id), k)

    def test_wire_and_logical_counters(self):
        alloc = make_allocator()
        space = SwapSpace(codec=BytePlaneCodec())
        handle = space.swap_out(alloc, fill_blocks(alloc, 2))
        stats = space.stats
        logical = handle.stored_logical_nbytes
        wire = handle.stored_wire_nbytes
        assert logical == 2 * alloc.block_nbytes()  # keys+values, 2 blocks
        assert stats.swapped_out_logical_bytes == logical
        assert stats.swapped_out_wire_bytes == wire
        assert wire != logical  # byteplane re-measures the fp16 image
        space.swap_in(handle, alloc)
        assert stats.swapped_in_logical_bytes == logical
        assert stats.swapped_in_wire_bytes == wire

    def test_raw_default_wire_equals_logical(self):
        alloc = make_allocator()
        space = SwapSpace()  # default codec is raw
        assert isinstance(space.codec, RawCodec)
        handle = space.swap_out(alloc, fill_blocks(alloc, 2))
        assert handle.stored_wire_nbytes == handle.stored_logical_nbytes
        assert (
            space.stats.swapped_out_wire_bytes
            == space.stats.swapped_out_logical_bytes
        )

    def test_demotion_tracks_wire_bytes(self):
        alloc = make_allocator()
        space = SwapSpace(cpu_capacity_blocks=2, codec=BytePlaneCodec())
        first = space.swap_out(alloc, fill_blocks(alloc, 2, seed=1))
        first_wire = first.stored_wire_nbytes
        space.swap_out(alloc, fill_blocks(alloc, 2, seed=2))
        assert first.tier == "disk"
        assert space.stats.demoted_wire_bytes == first_wire
        assert space.stats.demoted_logical_bytes == first.stored_logical_nbytes

    def test_per_call_codec_overrides_default(self):
        # 32-token blocks: enough tokens per channel for int4's per-channel
        # (min, scale) params to amortise into a real compression win.
        alloc = make_allocator(block_size=32)
        space = SwapSpace()  # raw default
        handle = space.swap_out(
            alloc, fill_blocks(alloc, 1), tier="disk",
            codec=IntQuantCodec(4),
        )
        assert handle.codec.name == "int4"
        assert handle.stored_wire_nbytes < handle.stored_logical_nbytes // 2

    def test_lossy_swap_restores_within_bound(self):
        alloc = make_allocator()
        ids = fill_blocks(alloc, 1)
        keys = alloc.block_keys(ids[0]).copy()
        space = SwapSpace(codec=IntQuantCodec(8))
        handle = space.swap_out(alloc, ids)
        bound = max(
            enc.error_bound
            for pos in (handle.keys, handle.values)
            for enc in pos
            if enc is not None
        )
        alloc.decref(ids[0])
        new_ids = space.swap_in(handle, alloc)
        assert np.max(np.abs(alloc.block_keys(new_ids[0]) - keys)) <= bound

    def test_peek_returns_copies(self):
        alloc = make_allocator()
        ids = fill_blocks(alloc, 1)
        keys = alloc.block_keys(ids[0]).copy()
        space = SwapSpace(codec=BytePlaneCodec())
        handle = space.swap_out(alloc, ids)
        peeked_keys, _ = space.peek(handle)
        peeked_keys[0][...] = -1.0  # scribbling the peek must not leak
        alloc.decref(ids[0])
        new_ids = space.swap_in(handle, alloc)
        assert np.array_equal(alloc.block_keys(new_ids[0]), keys)

    def test_peek_encoded_returns_parked_objects(self):
        alloc = make_allocator()
        space = SwapSpace(codec=BytePlaneCodec())
        handle = space.swap_out(alloc, fill_blocks(alloc, 2))
        enc_keys, enc_values = space.peek_encoded(handle)
        assert enc_keys[0] is handle.keys[0]  # no decode, no re-encode
        assert enc_values[1] is handle.values[1]
        # ... and the handle is still restorable afterwards.
        space.swap_in(handle, alloc)

    def test_peek_encoded_encodes_pinned_blocks_on_the_fly(self):
        alloc = make_allocator()
        (shared,) = fill_blocks(alloc, 1)
        alloc.incref(shared)
        space = SwapSpace(codec=BytePlaneCodec())
        handle = space.swap_out(alloc, [shared])
        assert handle.pinned_blocks == 1
        enc_keys, _ = space.peek_encoded(handle)
        assert enc_keys[0].codec == "byteplane"
        assert np.array_equal(enc_keys[0].decode(), alloc.block_keys(shared))

    def test_materialize_pins_bills_wire_bytes(self):
        alloc = make_allocator()
        (shared,) = fill_blocks(alloc, 1)
        alloc.incref(shared)
        space = SwapSpace(codec=BytePlaneCodec())
        handle = space.swap_out(alloc, [shared])
        assert space.stats.swapped_out_wire_bytes == 0  # pin moved nothing
        alloc.decref(shared)
        space.materialize_pins(handle)
        assert space.stats.swapped_out_wire_bytes == handle.stored_wire_nbytes
        assert handle.stored_wire_nbytes > 0

    def test_describe_reports_codec_and_bytes(self):
        alloc = make_allocator()
        space = SwapSpace(codec=BytePlaneCodec())
        space.swap_out(alloc, fill_blocks(alloc, 1))
        info = space.describe()
        assert info["codec"] == "byteplane"
        assert info["swapped_out_wire_bytes"] > 0


# ---------------------------------------------------------- latency model


class TestSwapLatency:
    @pytest.fixture()
    def latency(self):
        return LatencyModel(HardwareSpec.paper_testbed(), ModelConfig.tiny())

    def test_swap_out_links_pcie_then_disk(self, latency):
        timeline = latency.swap_out_timeline(1e6, disk_bytes=5e5)
        d2h, disk = timeline["swap-d2h"], timeline["swap-disk-write"]
        assert d2h.resource == Resource.D2H
        assert disk.resource == Resource.DISK
        assert disk.depends_on == ("swap-d2h",)
        assert disk.start >= d2h.finish
        assert timeline.makespan == pytest.approx(d2h.duration + disk.duration)

    def test_swap_in_links_disk_then_pcie(self, latency):
        timeline = latency.swap_in_timeline(1e6, disk_bytes=1e6)
        read, h2d = timeline["swap-disk-read"], timeline["swap-h2d"]
        assert read.resource == Resource.DISK
        assert h2d.resource == Resource.H2D
        assert h2d.depends_on == ("swap-disk-read",)
        assert h2d.start >= read.finish

    def test_cpu_only_swap_has_no_disk_leg(self, latency):
        out = latency.swap_out_timeline(1e6)
        assert "swap-disk-write" not in out
        assert latency.swap_out_seconds(1e6) == pytest.approx(
            latency.hardware.interconnect.transfer_seconds(1e6)
        )

    def test_swap_bytes_validated(self, latency):
        with pytest.raises(ConfigurationError):
            latency.swap_out_timeline(-1.0)
        with pytest.raises(ConfigurationError):
            latency.swap_in_timeline(1.0, disk_bytes=-1.0)

    def test_zero_flops_emit_no_codec_stage(self, latency):
        out = latency.swap_out_timeline(1e6, disk_bytes=5e5)
        assert "swap-encode" not in out
        back = latency.swap_in_timeline(1e6)
        assert "swap-decode" not in back

    def test_encode_stage_gates_the_d2h_leg(self, latency):
        timeline = latency.swap_out_timeline(1e6, encode_flops=6e6)
        encode, d2h = timeline["swap-encode"], timeline["swap-d2h"]
        assert encode.resource == Resource.CPU
        assert d2h.depends_on == ("swap-encode",)
        assert d2h.start >= encode.finish
        assert encode.duration == pytest.approx(latency.codec_seconds(6e6))
        # The codec stage lengthens the swap: its cost is real.
        assert timeline.makespan > latency.swap_out_timeline(1e6).makespan

    def test_decode_stage_follows_the_h2d_leg(self, latency):
        timeline = latency.swap_in_timeline(1e6, decode_flops=3e6)
        h2d, decode = timeline["swap-h2d"], timeline["swap-decode"]
        assert decode.resource == Resource.CPU
        assert decode.depends_on == ("swap-h2d",)
        assert decode.start >= h2d.finish

    def test_migration_encode_overlaps_disk_read(self, latency):
        timeline = latency.migration_timeline(
            1e6, disk_bytes=5e5, encode_flops=6e6, decode_flops=3e6
        )
        encode = timeline["migrate-encode"]
        read = timeline["swap-disk-read"]
        h2d = timeline["swap-h2d"]
        assert encode.resource == Resource.CPU
        # Source-side encode and owner NVMe read proceed in parallel; the
        # PCIe leg waits on both.
        assert set(h2d.depends_on) == {"migrate-encode", "swap-disk-read"}
        assert encode.start == read.start == 0.0
        assert timeline["swap-decode"].depends_on == ("swap-h2d",)

    def test_codec_seconds_validated(self, latency):
        assert latency.codec_seconds(0.0) == 0.0
        assert latency.codec_seconds(1e6) > 0.0
        with pytest.raises(ConfigurationError):
            latency.codec_seconds(-1.0)


# ------------------------------------------------------- prefix-cache spill


def fill_chain(alloc, tokens, seed=0):
    """Prefill-like chain: a paged cache holding ``tokens`` with random KV."""
    rng = np.random.default_rng(seed)
    paged = PagedKVCache(alloc)
    for layer in range(alloc.num_layers):
        k = rng.normal(size=(alloc.num_kv_heads, len(tokens), alloc.head_dim))
        paged[layer].append(k, k * 2.0)
    return paged


def make_snapshot(fingerprint="fp", num_tokens=8):
    return PQSnapshot(
        quantizers=[],
        codebooks=[np.zeros((2, 2, 4, 4))],
        codes=[np.zeros((num_tokens, 2, 2), dtype=np.uint8)],
        num_tokens=num_tokens,
        sketch_upto=num_tokens,
        fingerprint=fingerprint,
    )


class TestPrefixCacheSpill:
    def test_spill_then_restore_is_bitwise(self):
        alloc = make_allocator(capacity=8)
        space = SwapSpace()
        cache = PrefixCache(alloc, spill_store=space)
        alloc.eviction_hook = cache.evict
        tokens = list(range(16))
        paged = fill_chain(alloc, tokens)
        snap = make_snapshot()
        cache.insert(tokens, paged.table.block_ids,
                     pq_fingerprint="fp", pq_snapshot=snap)
        originals = {
            b: alloc.block_keys(b).copy() for b in paged.table.block_ids
        }
        order = list(paged.table.block_ids)
        paged.release()

        freed = cache.evict(4)
        assert freed == 4
        assert cache.num_spilled == 4 and cache.num_resident == 0
        assert space.disk_blocks == 4
        assert cache.stats.spilled_payload_bytes >= snap.nbytes()

        match = cache.match(tokens, fingerprint="fp")
        assert match is not None and match.matched_tokens == 16
        assert match.pq_snapshot is snap
        assert cache.stats.restored_blocks == 4
        assert space.disk_blocks == 0
        for new_id, old_id in zip(match.block_ids, order):
            assert np.array_equal(alloc.block_keys(new_id), originals[old_id])

    def test_reinsert_readopts_spilled_nodes_without_disk_read(self):
        alloc = make_allocator(capacity=8)
        space = SwapSpace()
        cache = PrefixCache(alloc, spill_store=space)
        tokens = list(range(8))
        paged = fill_chain(alloc, tokens)
        cache.insert(tokens, paged.table.block_ids)
        paged.release()
        assert cache.evict(2) == 2
        assert cache.num_spilled == 2

        # The same prompt served cold again re-inserts identical blocks.
        paged2 = fill_chain(alloc, tokens)
        cache.insert(tokens, paged2.table.block_ids)
        assert cache.num_spilled == 0
        assert cache.stats.readopted_blocks == 2
        assert cache.stats.restored_blocks == 0  # no disk read happened
        assert space.disk_blocks == 0  # stale spilled copies discarded

    def test_disk_exhaustion_falls_back_to_hard_eviction(self):
        alloc = make_allocator(capacity=8)
        space = SwapSpace(disk_capacity_blocks=1)
        cache = PrefixCache(alloc, spill_store=space)
        tokens = list(range(16))
        paged = fill_chain(alloc, tokens)
        cache.insert(tokens, paged.table.block_ids)
        paged.release()
        freed = cache.evict(4)
        assert freed == 4
        assert cache.stats.spilled_blocks == 1      # disk absorbed one block
        assert cache.stats.evicted_blocks == 3      # the rest dropped outright

    def test_reentrant_eviction_mid_restore_never_aliases(self):
        """Regression: restoring a chain must not cannibalise that chain.

        With the disk tier full, the allocation inside a spilled node's
        restore fires the eviction hook.  Before the fix the fallback could
        hard-remove a *later* node of the very chain being restored and
        recycle its block id for the restore itself — the match then
        returned a chain whose tail aliased the restored head's data.  The
        chain under restoration is now shielded: under a packed pool the
        lookup degrades to a miss with the chain intact, and succeeds
        bitwise once the pool has room again.
        """
        alloc = make_allocator(capacity=3)
        space = SwapSpace(disk_capacity_blocks=1)
        cache = PrefixCache(alloc, spill_store=space)
        alloc.eviction_hook = cache.evict
        tokens = list(range(8))  # 2 blocks
        paged = fill_chain(alloc, tokens)
        first_keys = alloc.block_keys(paged.table.block_ids[0]).copy()
        second_keys = alloc.block_keys(paged.table.block_ids[1]).copy()
        cache.insert(tokens, paged.table.block_ids)
        paged.release()
        assert cache.evict(1) == 1          # head spilled; disk tier now full
        assert cache.num_spilled == 1
        hogs = [alloc.allocate(), alloc.allocate()]  # pool completely full

        # No room to restore the head and its own chain is off-limits to the
        # re-entrant eviction: a clean miss, nothing removed, nothing aliased.
        assert cache.match(tokens) is None
        assert len(cache) == 2 and cache.num_spilled == 1

        for bid in hogs:
            alloc.decref(bid)
        match = cache.match(tokens)
        assert match is not None and match.matched_tokens == 8
        assert np.array_equal(alloc.block_keys(match.block_ids[0]), first_keys)
        assert np.array_equal(alloc.block_keys(match.block_ids[1]), second_keys)

    def test_truncated_restore_degrades_to_shorter_match(self):
        """A pool too tight to restore the whole chain yields a shorter hit."""
        alloc = make_allocator(capacity=4)
        space = SwapSpace()
        cache = PrefixCache(alloc, spill_store=space)
        tokens = list(range(16))
        paged = fill_chain(alloc, tokens)
        cache.insert(tokens, paged.table.block_ids)
        paged.release()
        assert cache.evict(4) == 4
        # Fill the pool so that only 2 blocks can come back.
        hog = [alloc.allocate(), alloc.allocate()]
        match = cache.match(tokens)
        assert match is not None
        assert match.matched_tokens == 8  # 2 of 4 blocks restored
        assert cache.stats.restored_blocks == 2
        for bid in hog:
            alloc.decref(bid)


# ----------------------------------- export / restore double-billing guard


class CountingCodec(BytePlaneCodec):
    """Byteplane codec that counts decode calls (double-read regression)."""

    def __init__(self, dtype_bytes=2):
        super().__init__(dtype_bytes)
        self.decodes = 0

    def decode(self, encoded):
        self.decodes += 1
        return super().decode(encoded)


class TestExportedSpillBilling:
    def _spilled_cache(self, codec=None, capacity=8, tokens=128):
        # 32-token blocks so lossy codecs amortise their channel params.
        alloc = make_allocator(capacity=capacity, block_size=32)
        space = SwapSpace()
        cache = PrefixCache(alloc, spill_store=space, spill_codec=codec)
        token_ids = list(range(tokens))
        paged = fill_chain(alloc, token_ids)
        cache.insert(token_ids, paged.table.block_ids)
        paged.release()
        cache.evict(tokens // alloc.block_size)
        return alloc, space, cache, token_ids

    def test_export_ships_parked_form_without_restore(self):
        """Exporting a spilled chain must not read it back through NVMe.

        The exported nodes carry the parked encoded payloads themselves —
        no decode on the owner, no restore-counter mutation — so a later
        local restore of the same chain bills its disk read exactly once.
        """
        codec = CountingCodec()
        alloc, space, cache, tokens = self._spilled_cache(codec=codec)
        assert cache.num_spilled == 4
        exported = cache.export_chain(tokens)
        assert exported is not None and exported.disk_blocks == 4
        # The parked objects travelled as-is: zero decodes, zero restores.
        assert codec.decodes == 0
        assert cache.stats.restored_blocks == 0
        assert cache.stats.restored_wire_bytes == 0
        assert space.disk_blocks == 4  # owner copy still parked
        # A later local restore of the very same chain bills once, normally.
        match = cache.match(tokens)
        assert match is not None and match.matched_tokens == len(tokens)
        assert cache.stats.restored_blocks == 4
        assert cache.stats.restored_wire_bytes > 0

    def test_import_decodes_each_block_exactly_once(self):
        codec = CountingCodec()
        alloc, space, cache, tokens = self._spilled_cache(codec=codec)
        exported = cache.export_chain(tokens)
        target_alloc = make_allocator(capacity=8, block_size=32)
        target = PrefixCache(target_alloc)
        written = target.import_chain(exported)
        assert written == 4
        assert codec.decodes == 2 * written  # keys + values per block

    def test_exported_wire_bytes_reflect_spill_codec(self):
        _, _, cache, tokens = self._spilled_cache(codec=IntQuantCodec(4))
        exported = cache.export_chain(tokens)
        assert exported.disk_blocks == 4
        assert exported.kv_wire_nbytes < exported.kv_logical_nbytes // 2
        assert exported.disk_wire_nbytes == exported.kv_wire_nbytes

    def test_lossy_spill_restores_within_bound(self):
        alloc = make_allocator(capacity=8)
        space = SwapSpace()
        cache = PrefixCache(alloc, spill_store=space,
                            spill_codec=IntQuantCodec(8))
        tokens = list(range(16))
        paged = fill_chain(alloc, tokens)
        originals = [
            alloc.block_keys(b).copy() for b in paged.table.block_ids
        ]
        cache.insert(tokens, paged.table.block_ids)
        paged.release()
        cache.evict(4)
        bound = max(
            enc.error_bound
            for node in cache._nodes.values()
            for enc in (*node.spill_handle.keys, *node.spill_handle.values)
            if enc is not None
        )
        match = cache.match(tokens)
        assert match is not None and match.matched_tokens == 16
        for new_id, original in zip(match.block_ids, originals):
            err = np.max(np.abs(alloc.block_keys(new_id) - original))
            assert 0.0 < err <= bound  # genuinely lossy, within declaration

    def test_spill_wire_counter_tracks_codec(self):
        alloc, _, cache, _ = self._spilled_cache(codec=IntQuantCodec(4))
        logical = cache.stats.spilled_blocks * alloc.block_nbytes()
        assert 0 < cache.stats.spilled_wire_bytes < logical // 2


# --------------------------------------------- snapshot hold refcounting


class TestSnapshotHoldRefcounts:
    def test_holds_balanced_across_evict_reinsert_cycles(self):
        """Regression: eviction must release storage holds symmetrically.

        Each insert retains one hold per covering node; each hard eviction
        of a node releases it.  Over repeated evict/re-insert cycles the
        hold count must return to exactly the live-node count instead of
        drifting upward (the pre-fix leak) or underflowing.
        """
        alloc = make_allocator(capacity=8)
        cache = PrefixCache(alloc)  # no spill store: hard eviction path
        tokens = list(range(8))     # 2 blocks
        snap = make_snapshot(num_tokens=8)
        for cycle in range(5):
            paged = fill_chain(alloc, tokens, seed=cycle)
            cache.insert(tokens, paged.table.block_ids,
                         pq_fingerprint="fp", pq_snapshot=snap)
            assert snap.hold_count == 2, f"cycle {cycle}"
            paged.release()
            assert cache.evict(2) == 2
            assert len(cache) == 0
            assert snap.hold_count == 0, f"cycle {cycle}"

    def test_replacement_releases_previous_hold(self):
        alloc = make_allocator(capacity=8)
        cache = PrefixCache(alloc)
        tokens = list(range(8))
        shallow = make_snapshot(num_tokens=4)
        deep = make_snapshot(num_tokens=8)
        paged = fill_chain(alloc, tokens)
        cache.insert(tokens, paged.table.block_ids,
                     pq_fingerprint="fp", pq_snapshot=shallow)
        assert shallow.hold_count == 2
        cache.insert(tokens, paged.table.block_ids,
                     pq_fingerprint="fp", pq_snapshot=deep)
        assert shallow.hold_count == 0  # replaced on both nodes
        assert deep.hold_count == 2
        # A shallower snapshot never replaces a deeper one.
        cache.insert(tokens, paged.table.block_ids,
                     pq_fingerprint="fp", pq_snapshot=shallow)
        assert deep.hold_count == 2 and shallow.hold_count == 0
        paged.release()
        cache.clear()
        assert deep.hold_count == 0

    def test_spilled_nodes_keep_their_holds(self):
        alloc = make_allocator(capacity=8)
        cache = PrefixCache(alloc, spill_store=SwapSpace())
        tokens = list(range(8))
        snap = make_snapshot(num_tokens=8)
        paged = fill_chain(alloc, tokens)
        cache.insert(tokens, paged.table.block_ids,
                     pq_fingerprint="fp", pq_snapshot=snap)
        paged.release()
        assert cache.evict(2) == 2
        assert cache.num_spilled == 2
        assert snap.hold_count == 2  # spilled nodes still hold the snapshot
        cache.clear()
        assert snap.hold_count == 0

    def test_release_hold_underflow_raises(self):
        snap = make_snapshot()
        with pytest.raises(ConfigurationError):
            snap.release_hold()
