"""Deadline-aware EDF scheduling, deadline shedding, quantile digests, and
the SLO feedback loop.

Directed companions to the randomized coverage in ``test_preemption.py``
(per-step EDF waiting-order oracle, genuine-miss shed audit) and
``test_cluster.py`` (edf_aware routing, cluster deadline fuzz):

* :class:`~repro.serve.RequestQoS` deadline validation and resolution
  against the simulated clock;
* EDF ordering inside the scheduler's waiting queue — within a priority
  class, deadline-tagged items in earliest-deadline order ahead of the
  untagged FCFS tail, preemption victims re-entering at the front of their
  rank;
* the unified shed-victim ranking (``lowest_ranked_waiting``) and its
  never-shed-preemption-victims filter;
* deadline-miss shedding, at admission (provably unmeetable) and mid-wait
  (clock passed the deadline), with ``finish_reason="deadline"`` and the
  miss counters;
* :class:`~repro.serve.QuantileDigest` accuracy/merge/delta/bound
  semantics;
* :class:`~repro.serve.SLOTuner` control moves (tighten/relax/hysteresis)
  and the engine integration's byte-identity.
"""

from __future__ import annotations

import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve import (
    EngineMetrics,
    InferenceEngine,
    QuantileDigest,
    Request,
    RequestQoS,
    SamplingParams,
    SchedulerConfig,
    SLOTuner,
)
from repro.serve.cluster import Worker
from repro.serve.scheduler import ContinuousBatchingScheduler


def make_request(rid, prompt, deadline=None, priority=0, tenant="default",
                 weight=1.0, max_new=3):
    return Request(
        request_id=rid,
        prompt_ids=list(prompt),
        sampling=SamplingParams(max_new_tokens=max_new),
        qos=RequestQoS(priority=priority, tenant=tenant, weight=weight,
                       deadline=deadline),
    )


def make_prompt(rng, n=60, vocab=256):
    return rng.integers(4, vocab, size=n).tolist()


# ---------------------------------------------------------------------------
# RequestQoS deadline field
# ---------------------------------------------------------------------------


class TestDeadlineQoS:
    def test_deadline_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RequestQoS(deadline=0.0)
        with pytest.raises(ConfigurationError):
            RequestQoS(deadline=-1.0)
        assert RequestQoS(deadline=None).deadline is None
        assert RequestQoS(deadline=0.5).deadline == 0.5

    def test_deadline_resolves_against_submit_clock(self, model, rng):
        """The relative deadline is anchored at the *simulated* submit
        instant, not at zero."""
        engine = InferenceEngine(model)
        engine.metrics.clock = 5.0
        rid = engine.submit(make_request("d0", make_prompt(rng), deadline=2.0))
        state = engine._states[rid]
        assert state.deadline_time == pytest.approx(7.0)
        assert state.metrics.deadline == pytest.approx(7.0)
        engine.run()

    def test_untagged_request_has_no_deadline_time(self, model, rng):
        engine = InferenceEngine(model)
        rid = engine.submit(make_request("d1", make_prompt(rng)))
        state = engine._states[rid]
        assert state.deadline_time is None
        assert state.metrics.deadline is None
        engine.run()


# ---------------------------------------------------------------------------
# Scheduler-level EDF ordering (duck-typed items)
# ---------------------------------------------------------------------------


class _Item(SimpleNamespace):
    """Minimal scheduler item: the duck-typed QoS protocol attributes."""

    def __init__(self, name, priority=0, seq=0, deadline_time=None):
        super().__init__(name=name, priority=priority, seq=seq,
                         deadline_time=deadline_time)

    def __repr__(self):
        return self.name


def _waiting_names(scheduler):
    return [item.name for item in scheduler.waiting_items()]


class TestEDFOrdering:
    def test_deadlines_order_within_class_ahead_of_fcfs_tail(self):
        scheduler = ContinuousBatchingScheduler()
        scheduler.submit(_Item("plain-a", seq=0))
        scheduler.submit(_Item("late", seq=1, deadline_time=9.0))
        scheduler.submit(_Item("plain-b", seq=2))
        scheduler.submit(_Item("early", seq=3, deadline_time=2.0))
        assert _waiting_names(scheduler) == [
            "early", "late", "plain-a", "plain-b"
        ]

    def test_priority_classes_never_mix(self):
        """EDF is strictly *within* a class — a tight deadline never lifts a
        request over a higher class."""
        scheduler = ContinuousBatchingScheduler()
        scheduler.submit(_Item("hi-plain", priority=2, seq=0))
        scheduler.submit(_Item("lo-urgent", priority=0, seq=1,
                               deadline_time=0.001))
        scheduler.submit(_Item("hi-late", priority=2, seq=2,
                               deadline_time=50.0))
        assert _waiting_names(scheduler) == [
            "hi-late", "hi-plain", "lo-urgent"
        ]

    def test_no_deadlines_degenerates_to_per_class_fcfs(self):
        scheduler = ContinuousBatchingScheduler()
        for seq, (name, priority) in enumerate(
            [("b0", 0), ("a0", 1), ("b1", 0), ("a1", 1)]
        ):
            scheduler.submit(_Item(name, priority=priority, seq=seq))
        assert _waiting_names(scheduler) == ["a0", "a1", "b0", "b1"]

    def test_untagged_victim_reenters_ahead_of_fcfs_tail_only(self):
        """A preempted deadline-less victim resumes before newer untagged
        arrivals of its class but still behind its class's EDF head."""
        scheduler = ContinuousBatchingScheduler()
        victim = _Item("victim", seq=0)
        scheduler.submit(victim)
        decision = scheduler.schedule()
        assert victim in decision.admitted
        scheduler.submit(_Item("urgent", seq=1, deadline_time=1.0))
        scheduler.submit(_Item("newer", seq=2))
        scheduler.preempt(victim)
        assert _waiting_names(scheduler) == ["urgent", "victim", "newer"]

    def test_tagged_victim_reenters_at_its_edf_rank(self):
        """A preempted deadline-tagged victim re-enters in EDF position —
        ahead of equal-deadline peers, behind strictly earlier ones."""
        scheduler = ContinuousBatchingScheduler()
        victim = _Item("victim", seq=0, deadline_time=5.0)
        scheduler.submit(victim)
        scheduler.schedule()
        scheduler.submit(_Item("earlier", seq=1, deadline_time=2.0))
        scheduler.submit(_Item("peer", seq=2, deadline_time=5.0))
        scheduler.submit(_Item("later", seq=3, deadline_time=8.0))
        scheduler.preempt(victim)
        assert _waiting_names(scheduler) == [
            "earlier", "victim", "peer", "later"
        ]


# ---------------------------------------------------------------------------
# Unified shed-victim ranking (satellite 1)
# ---------------------------------------------------------------------------


class TestShedVictimRanking:
    def test_lowest_class_newest_within_it(self):
        scheduler = ContinuousBatchingScheduler()
        items = [
            _Item("hi-old", priority=2, seq=0),
            _Item("lo-old", priority=0, seq=1),
            _Item("lo-new", priority=0, seq=2),
            _Item("mid", priority=1, seq=3),
        ]
        for item in items:
            scheduler.submit(item)
        victim = scheduler.lowest_ranked_waiting()
        assert victim.name == "lo-new"

    def test_eligibility_filter_excludes_and_may_empty(self):
        scheduler = ContinuousBatchingScheduler()
        protected = _Item("protected", priority=0, seq=5)
        other = _Item("other", priority=1, seq=1)
        scheduler.submit(protected)
        scheduler.submit(other)
        victim = scheduler.lowest_ranked_waiting(
            lambda item: item is not protected
        )
        assert victim is other
        assert scheduler.lowest_ranked_waiting(lambda item: False) is None
        assert ContinuousBatchingScheduler().lowest_ranked_waiting() is None

    def test_overflow_never_sheds_a_requeued_preemption_victim(self, model):
        """Regression: the ``max_waiting`` overflow path ranks victims
        through the same never-admitted filter as the deadline sweep, so a
        preemption victim parked in the waiting queue — lowest class,
        newest seq, exactly what the dead ``lowest_ranked_waiting`` helper
        used to return — is never shed."""
        rng = np.random.default_rng(3)
        engine = InferenceEngine(
            model,
            scheduler_config=SchedulerConfig(
                max_batch_size=1, preemption_mode="swap", max_waiting=1,
            ),
            enable_prefix_caching=True,
            kv_block_size=16,
            kv_pool_blocks=12,
            max_retained_outputs=0,
        )
        victim = make_request("victim", make_prompt(rng, 100), max_new=6)
        engine.submit(victim)
        for _ in range(200):
            engine.step()
            if engine._states["victim"].status.name in ("RUNNING",
                                                        "PREFILLING"):
                break
        claimant = make_request("claimant", make_prompt(rng, 100),
                                priority=1, max_new=6)
        engine.submit(claimant)
        # force the victim out: it re-enters the waiting queue as a
        # re-queued preemption victim (lowest class, newest-looking rank)
        state = engine._states["victim"]
        assert engine._preempt_victim(state)
        assert not engine._never_admitted(state)
        # overflow the waiting queue with fresh lowest-class arrivals: the
        # shed victim must be one of them, never the preemption victim
        engine.submit(make_request("fresh-a", make_prompt(rng, 30)))
        engine.submit(make_request("fresh-b", make_prompt(rng, 30)))
        assert engine.metrics.requests_shed >= 1
        assert "victim" in engine._states
        finals = engine.run()
        assert finals["victim"].finish_reason == "length"


# ---------------------------------------------------------------------------
# Deadline shedding
# ---------------------------------------------------------------------------


class TestDeadlineShedding:
    def test_mid_wait_miss_is_shed_with_counters(self, model, rng):
        """A request still waiting when the clock passes its deadline
        finishes with ``finish_reason="deadline"`` and bumps the miss
        counters at every level."""
        engine = InferenceEngine(
            model,
            scheduler_config=SchedulerConfig(max_batch_size=1),
            enable_prefix_caching=True,
        )
        # above the (one-token, prefix-cached) admission bound so it passes
        # the gate, far below the blocker's makespan so it expires mid-wait;
        # the blocker outranks it so the tagged request genuinely waits
        deadline = 4.0 * engine.min_ttft_lower_bound(60)
        blocker = make_request("blocker", make_prompt(rng, 120), max_new=8,
                               priority=3)
        doomed = make_request("doomed", make_prompt(rng, 60),
                              deadline=deadline, priority=1, tenant="chat")
        engine.submit(blocker)
        engine.submit(doomed)
        finals = engine.run()
        assert finals["blocker"].finish_reason == "length"
        out = finals["doomed"]
        assert out.finish_reason == "deadline"
        assert out.finished and out.token_ids == []
        assert out.metrics.finish_time > out.metrics.deadline
        assert engine.metrics.deadline_misses == 1
        assert engine.metrics.requests_shed == 1
        assert engine.metrics.per_class[1].deadline_misses == 1
        assert engine.metrics.per_tenant["chat"].deadline_misses == 1
        assert engine.metrics.as_dict()["deadline_misses"] == 1

    def test_admission_shed_when_provably_unmeetable(self, model, rng):
        """Without prefix caching the TTFT lower bound covers the whole
        prompt's prefill compute; a deadline below it is shed at submit,
        before any other request even runs."""
        engine = InferenceEngine(model, enable_prefix_caching=False)
        prompt = make_prompt(rng, 200)
        bound = engine.min_ttft_lower_bound(len(prompt))
        assert bound > 0.0
        engine.submit(make_request("hopeless", prompt, deadline=bound / 2))
        assert "hopeless" not in engine._states  # refused at the gate
        finals = engine.run()
        assert finals["hopeless"].finish_reason == "deadline"
        assert engine.metrics.deadline_misses == 1

    def test_prefix_caching_weakens_bound_to_one_token(self, model):
        """With prefix caching a full-prefix hit could serve all but one
        token, so the admission bound must not assume cold prefill."""
        cached = InferenceEngine(model, enable_prefix_caching=True)
        cold = InferenceEngine(model, enable_prefix_caching=False)
        assert cached.min_ttft_lower_bound(200) == (
            cached.min_ttft_lower_bound(999)
        )
        assert cold.min_ttft_lower_bound(200) > cached.min_ttft_lower_bound(200)

    def test_meetable_deadline_is_not_shed_at_admission(self, model, rng):
        engine = InferenceEngine(model, enable_prefix_caching=False)
        prompt = make_prompt(rng, 60)
        engine.submit(make_request("fine", prompt, deadline=10.0))
        finals = engine.run()
        assert finals["fine"].finish_reason == "length"
        assert engine.metrics.deadline_misses == 0

    def test_shedding_disabled_keeps_edf_but_completes(self, model, rng):
        """``shed_missed_deadlines=False``: deadlines still steer ordering,
        but every request runs to completion (the A/B comparison mode)."""
        engine = InferenceEngine(
            model,
            scheduler_config=SchedulerConfig(
                max_batch_size=1, shed_missed_deadlines=False,
            ),
        )
        engine.submit(make_request("blocker", make_prompt(rng, 120),
                                   max_new=8))
        engine.submit(make_request("plain", make_prompt(rng, 40)))
        engine.submit(make_request("urgent", make_prompt(rng, 40),
                                   deadline=1e-12))
        # EDF still orders the hopeless-deadline request ahead of the
        # untagged FCFS tail...
        names = [s.request.request_id
                 for s in engine.scheduler.waiting_items()]
        assert names == ["urgent", "blocker", "plain"]
        # ...but nothing is shed
        finals = engine.run()
        assert all(out.finish_reason == "length" for out in finals.values())
        assert engine.metrics.deadline_misses == 0

    def test_deadline_steering_never_changes_bytes(self, model, rng):
        """The invariant, directed: same requests with and without
        deadlines produce byte-identical tokens and logits for everything
        that completes."""
        prompts = [make_prompt(rng, 60 + 20 * i) for i in range(3)]
        plain = [make_request(f"r{i}", p) for i, p in enumerate(prompts)]
        tagged = [
            make_request(f"r{i}", p, deadline=10.0 - 3 * i)
            for i, p in enumerate(prompts)
        ]
        config = SchedulerConfig(max_batch_size=2,
                                 max_prefill_chunk_tokens=32)
        refs = InferenceEngine(model, scheduler_config=config).run(plain)
        outs = InferenceEngine(model, scheduler_config=config).run(tagged)
        for rid, ref in refs.items():
            assert outs[rid].token_ids == ref.token_ids
            assert np.array_equal(outs[rid].logits, ref.logits)


# ---------------------------------------------------------------------------
# Idempotent abort (satellite 2) — shed/abort race
# ---------------------------------------------------------------------------


class TestAbortShedRace:
    def test_abort_after_deadline_shed_is_noop(self, model, rng):
        """An abort that loses the race against a deadline shed returns the
        shed final instead of raising — the caller cannot know the request
        was dropped a step earlier."""
        engine = InferenceEngine(
            model,
            scheduler_config=SchedulerConfig(max_batch_size=1),
        )
        engine.submit(make_request("blocker", make_prompt(rng, 120),
                                   max_new=8))
        engine.submit(make_request("doomed", make_prompt(rng, 60),
                                   deadline=1e-12))
        finals = engine.run()
        assert finals["doomed"].finish_reason == "deadline"
        out = engine.abort("doomed")
        assert out is not None and out.finish_reason == "deadline"
        assert engine.metrics.requests_aborted == 0
        # and still raises for ids that were never submitted at all
        with pytest.raises(ConfigurationError):
            engine.abort("ghost")


# ---------------------------------------------------------------------------
# QuantileDigest
# ---------------------------------------------------------------------------


class TestQuantileDigest:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QuantileDigest(relative_error=0.0)
        with pytest.raises(ConfigurationError):
            QuantileDigest(relative_error=1.0)
        with pytest.raises(ConfigurationError):
            QuantileDigest(max_buckets=1)
        with pytest.raises(ConfigurationError):
            QuantileDigest().quantile(1.5)

    def test_empty_digest_reports_none(self):
        digest = QuantileDigest()
        assert digest.count == 0
        assert digest.mean is None
        assert digest.quantile(0.5) is None
        assert digest.as_dict()["p99"] is None
        digest.observe(None)  # optional metrics fold None away
        assert digest.count == 0

    def test_quantiles_match_numpy_within_relative_error(self):
        """The digest's contract: every quantile within ``relative_error``
        of ``numpy.percentile(..., method="nearest")`` on the raw stream."""
        rng = np.random.default_rng(11)
        samples = rng.lognormal(mean=-6.0, sigma=1.5, size=5000)
        digest = QuantileDigest(relative_error=0.01)
        for value in samples:
            digest.observe(float(value))
        for p in (1, 10, 25, 50, 75, 90, 99, 99.9):
            exact = float(np.percentile(samples, p, method="nearest"))
            approx = digest.percentile(p)
            assert approx == pytest.approx(exact, rel=0.011), f"p{p}"
        assert digest.mean == pytest.approx(float(samples.mean()))

    def test_merge_equals_concatenated_stream(self):
        rng = np.random.default_rng(12)
        a_samples = rng.exponential(0.01, size=400)
        b_samples = rng.exponential(0.5, size=600)
        a, b, both = QuantileDigest(), QuantileDigest(), QuantileDigest()
        for value in a_samples:
            a.observe(float(value))
            both.observe(float(value))
        for value in b_samples:
            b.observe(float(value))
            both.observe(float(value))
        merged = a.merge(b)
        assert merged is a
        assert a._counts == both._counts
        assert a.count == both.count == 1000
        assert a.quantile(0.9) == both.quantile(0.9)
        # identical streams ⇒ value-equal digests (what the fused-vs-looped
        # engine-metrics identity comparison relies on)
        assert a == both
        both.observe(1.0)
        assert a != both

    def test_merge_rejects_mismatched_error(self):
        with pytest.raises(ConfigurationError):
            QuantileDigest(relative_error=0.01).merge(
                QuantileDigest(relative_error=0.05)
            )

    def test_snapshot_detaches_and_reset_zeroes(self):
        digest = QuantileDigest()
        digest.observe(1.0)
        snap = digest.snapshot()
        digest.observe(100.0)
        assert snap.count == 1 and digest.count == 2
        assert snap.quantile(1.0) == pytest.approx(1.0, rel=0.011)
        digest.reset()
        assert digest.count == 0 and digest.quantile(0.5) is None

    def test_delta_reads_a_window_without_reset(self):
        digest = QuantileDigest()
        for value in (0.001, 0.002, 0.003):
            digest.observe(value)
        mark = digest.snapshot()
        for value in (1.0, 2.0, 3.0):
            digest.observe(value)
        window = digest.delta(mark)
        assert window.count == 3
        # the window holds only the post-mark samples
        assert window.quantile(0.0) == pytest.approx(1.0, rel=0.011)
        assert digest.delta(None).count == digest.count == 6

    def test_memory_bound_collapses_low_buckets(self):
        rng = np.random.default_rng(13)
        samples = 10.0 ** rng.uniform(-9, 2, size=2000)
        # the hard bound holds even under absurd pressure (8 buckets over
        # 11 decades): only the max clamp is still trustworthy there
        tiny = QuantileDigest(relative_error=0.01, max_buckets=8)
        for value in samples:
            tiny.observe(float(value))
        assert len(tiny._counts) <= 8
        assert tiny.quantile(1.0) == pytest.approx(
            float(samples.max()), rel=0.011)
        # with headroom above the upper tail, collapse degrades only the
        # low quantiles — the SLO-bearing p99 keeps its error bound
        digest = QuantileDigest(relative_error=0.01, max_buckets=256)
        for value in samples:
            digest.observe(float(value))
        assert len(digest._counts) <= 256
        exact = float(np.percentile(samples, 99, method="nearest"))
        assert digest.percentile(99) == pytest.approx(exact, rel=0.011)

    def test_zero_and_subfloor_values_land_in_zero_bucket(self):
        digest = QuantileDigest()
        digest.observe(0.0)
        digest.observe(1e-15)
        digest.observe(5.0)
        assert digest.count == 3
        assert digest.quantile(0.0) == 0.0
        assert digest.quantile(1.0) == pytest.approx(5.0, rel=0.011)


# ---------------------------------------------------------------------------
# SLOTuner
# ---------------------------------------------------------------------------


def _fake_engine(baseline=None):
    """The slice of the engine surface the tuner touches."""
    scheduler = ContinuousBatchingScheduler(
        SchedulerConfig(proactive_swap_free_fraction=baseline)
    )
    return SimpleNamespace(
        metrics=EngineMetrics(),
        scheduler=scheduler,
        proactive_swap_free_fraction=baseline,
    )


def _feed(engine, priority, tenant, ttft, count):
    bucket = engine.metrics.class_bucket(priority)
    for _ in range(count):
        bucket.ttft.observe(ttft)


class TestSLOTuner:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SLOTuner({})
        with pytest.raises(ConfigurationError):
            SLOTuner({2: 0.0})
        with pytest.raises(ConfigurationError):
            SLOTuner({2: 0.01}, quantile=0.0)
        with pytest.raises(ConfigurationError):
            SLOTuner({2: 0.01}, weight_gain=1.0)
        with pytest.raises(ConfigurationError):
            SLOTuner({2: 0.01}, weight_gain=2.0, max_weight_gain=1.5)

    def _tick(self, tuner, engine, times):
        for _ in range(times):
            tuner.on_step(engine)

    def test_tighten_raises_threshold_and_boosts_tenants(self):
        tuner = SLOTuner({2: 0.001}, adjust_every=4, min_samples=2,
                         fraction_step=0.2, weight_gain=2.0)
        engine = _fake_engine(baseline=None)
        tuner.observe(SimpleNamespace(priority=2, tenant="chat", weight=4.0))
        _feed(engine, 2, "chat", ttft=0.01, count=3)  # p90 over target
        self._tick(tuner, engine, 4)
        assert engine.proactive_swap_free_fraction == pytest.approx(0.2)
        assert engine.scheduler.tenant_weights["chat"] == pytest.approx(8.0)
        assert engine.metrics.slo_tunings == 1
        assert tuner.history[-1]["action"] == "tighten"
        # the scheduler's weight lookup now sees the boosted override
        item = SimpleNamespace(tenant="chat", weight=4.0)
        assert engine.scheduler._weight(item) == pytest.approx(8.0)

    def test_tighten_caps_threshold_and_boost(self):
        tuner = SLOTuner({0: 0.001}, adjust_every=1, min_samples=1,
                         fraction_step=0.6, max_free_fraction=0.9,
                         weight_gain=4.0, max_weight_gain=6.0)
        engine = _fake_engine()
        tuner.observe(SimpleNamespace(priority=0, tenant="t", weight=1.0))
        for _ in range(3):
            _feed(engine, 0, "t", ttft=1.0, count=1)
            self._tick(tuner, engine, 1)
        assert engine.proactive_swap_free_fraction == pytest.approx(0.9)
        assert engine.scheduler.tenant_weights["t"] == pytest.approx(6.0)

    def test_relax_walks_back_to_baseline_and_removes_boosts(self):
        tuner = SLOTuner({2: 1.0}, adjust_every=1, min_samples=1,
                         fraction_step=0.25, weight_gain=2.0,
                         relax_margin=0.5)
        engine = _fake_engine(baseline=0.3)
        tuner.observe(SimpleNamespace(priority=2, tenant="chat", weight=1.0))
        # one violation arms the knobs
        _feed(engine, 2, "chat", ttft=5.0, count=1)
        self._tick(tuner, engine, 1)
        assert engine.proactive_swap_free_fraction == pytest.approx(0.55)
        assert "chat" in engine.scheduler.tenant_weights
        # two comfortable windows walk everything back
        for _ in range(2):
            _feed(engine, 2, "chat", ttft=0.01, count=1)
            self._tick(tuner, engine, 1)
        assert engine.proactive_swap_free_fraction == pytest.approx(0.3)
        assert engine.scheduler.tenant_weights == {}
        assert engine.metrics.slo_tunings >= 2
        assert tuner.history[-1]["action"] == "relax"

    def test_relax_restores_none_when_unconfigured(self):
        tuner = SLOTuner({0: 1.0}, adjust_every=1, min_samples=1,
                         fraction_step=0.2, relax_margin=0.5)
        engine = _fake_engine(baseline=None)
        _feed(engine, 0, "default", ttft=5.0, count=1)
        self._tick(tuner, engine, 1)
        assert engine.proactive_swap_free_fraction == pytest.approx(0.2)
        _feed(engine, 0, "default", ttft=0.01, count=1)
        self._tick(tuner, engine, 1)
        assert engine.proactive_swap_free_fraction is None

    def test_hysteresis_holds_between_margin_and_target(self):
        """Measured between relax_margin*target and target: neither move."""
        tuner = SLOTuner({0: 1.0}, adjust_every=1, min_samples=1,
                         relax_margin=0.5)
        engine = _fake_engine()
        _feed(engine, 0, "default", ttft=0.8, count=1)  # under target,
        self._tick(tuner, engine, 1)                    # over the margin
        assert engine.proactive_swap_free_fraction is None
        assert tuner.history == []

    def test_small_windows_are_not_trusted(self):
        tuner = SLOTuner({0: 0.001}, adjust_every=1, min_samples=10)
        engine = _fake_engine()
        _feed(engine, 0, "default", ttft=5.0, count=9)
        self._tick(tuner, engine, 1)
        assert engine.proactive_swap_free_fraction is None
        assert tuner.history == []

    def test_windows_are_deltas_not_cumulative(self):
        """A consumed violation window does not re-trigger: the next tick
        reads only post-mark samples."""
        tuner = SLOTuner({0: 0.1}, adjust_every=1, min_samples=1,
                         fraction_step=0.1)
        engine = _fake_engine()
        _feed(engine, 0, "default", ttft=5.0, count=4)
        self._tick(tuner, engine, 1)
        assert engine.proactive_swap_free_fraction == pytest.approx(0.1)
        # no new finishes: the window is empty, nothing moves
        self._tick(tuner, engine, 1)
        assert engine.proactive_swap_free_fraction == pytest.approx(0.1)
        assert len(tuner.history) == 1

    def test_engine_integration_tunes_without_touching_bytes(self, model, rng):
        """Wired into a real contended engine: the tuner fires (slo_tunings
        advances, the live threshold moves) and the run stays byte-identical
        to the same schedule without a tuner."""
        prompts = [make_prompt(rng, 80 + 10 * i) for i in range(4)]

        def requests():
            return [
                make_request(f"q{i}", p, priority=2, tenant="chat",
                             max_new=4)
                for i, p in enumerate(prompts)
            ]

        config = SchedulerConfig(max_batch_size=2,
                                 max_prefill_chunk_tokens=32)
        refs = InferenceEngine(model, scheduler_config=config,
                               enable_prefix_caching=True,
                               kv_block_size=16).run(requests())
        tuner = SLOTuner({2: 1e-9}, adjust_every=2, min_samples=1)
        engine = InferenceEngine(model, scheduler_config=config,
                                 enable_prefix_caching=True,
                                 kv_block_size=16, slo_tuner=tuner)
        finals = engine.run(requests())
        assert engine.metrics.slo_tunings > 0
        assert engine.metrics.as_dict()["slo_tunings"] > 0
        assert engine.proactive_swap_free_fraction is not None
        assert engine.scheduler.tenant_weights.get("chat", 1.0) > 1.0
        for rid, ref in refs.items():
            assert finals[rid].token_ids == ref.token_ids
            assert np.array_equal(finals[rid].logits, ref.logits)


# ---------------------------------------------------------------------------
# Worker deadline signals (router inputs)
# ---------------------------------------------------------------------------


class TestWorkerDeadlineSignals:
    def test_backlog_and_slack_track_scheduled_deadlines(self, model, rng):
        worker = Worker(0, model, enable_prefix_caching=True)
        worker.submit(make_request("a", make_prompt(rng), deadline=5.0))
        worker.submit(make_request("b", make_prompt(rng), deadline=1.0))
        worker.submit(make_request("c", make_prompt(rng)))  # untagged
        assert worker.deadline_backlog() == 2
        # an incoming request with 3s of slack queues behind only the
        # 1s-deadline request
        assert worker.deadline_backlog(before_slack=3.0) == 1
        assert worker.deadline_backlog(before_slack=0.5) == 0
        assert worker.nearest_deadline_slack == pytest.approx(
            1.0 - worker.metrics.clock
        )
        worker.run()
        assert worker.deadline_backlog() == 0
        assert worker.nearest_deadline_slack == math.inf
