"""Tests for the multi-worker serving cluster (repro.serve.cluster).

The load-bearing contract is **byte-identity**: for any placement policy and
worker count, every request's tokens AND logits equal a single-worker run —
placement (and migration) move only the simulated clock.  Around it:
fingerprint-directory coverage semantics, router scoring/tie-breaking/
fallback, spilled-chain export/import round-trips, and fleet metric
aggregation.
"""

import math

import numpy as np
import pytest

from repro.baselines import SelectionBudget
from repro.errors import ConfigurationError
from repro.serve import (
    EngineMetrics,
    InferenceEngine,
    PolicySpec,
    Request,
    RequestQoS,
    SamplingParams,
    chain_block_keys,
)
from repro.serve.cluster import (
    ROUTING_POLICIES,
    ClusterFrontend,
    FingerprintDirectory,
    Router,
    Worker,
)
from repro.serve.cluster.directory import RESIDENT, SPILLED

BUDGET = SelectionBudget(token_ratio=0.2, comm_ratio=1.0 / 64.0,
                         num_initial=4, num_local=16)

#: policy matrix from the issue: dense baseline + the paper's method + three
#: published baselines (None means no policy_spec — full attention).
CLUSTER_POLICIES = (None, "pqcache", "snapkv", "h2o", "sparq")

PROMPT_LENS = (120, 152, 184)


def make_prompts(tiny_config, lengths=PROMPT_LENS, seed=9):
    rng = np.random.default_rng(seed)
    return [rng.integers(4, tiny_config.vocab_size, size=n).tolist()
            for n in lengths]


def make_requests(prompts, policy_name, max_new_tokens=3, prefix="r"):
    spec = None if policy_name is None else (
        lambda: PolicySpec.named(policy_name, BUDGET))
    return [
        Request(request_id=f"{prefix}{i}", prompt_ids=prompt,
                sampling=SamplingParams(max_new_tokens=max_new_tokens),
                policy_spec=spec() if spec else None)
        for i, prompt in enumerate(prompts)
    ]


# ---------------------------------------------------------------------------
# Fingerprint directory
# ---------------------------------------------------------------------------


class TestFingerprintDirectory:
    KEYS = [b"k0", b"k1", b"k2", b"k3"]

    def test_coverage_counts_consecutive_leading_blocks_only(self):
        directory = FingerprintDirectory()
        for key in (self.KEYS[0], self.KEYS[2]):  # hole at block 1
            directory.record(key, worker_id=0, status=RESIDENT)
        coverage = directory.coverage(self.KEYS)
        assert coverage[0].resident_blocks == 1
        assert coverage[0].known_blocks == 1

    def test_spilled_block_ends_resident_streak_not_known_streak(self):
        directory = FingerprintDirectory()
        directory.record(self.KEYS[0], 1, RESIDENT)
        directory.record(self.KEYS[1], 1, SPILLED)
        directory.record(self.KEYS[2], 1, RESIDENT)
        coverage = directory.coverage(self.KEYS)
        assert coverage[1].resident_blocks == 1
        assert coverage[1].known_blocks == 3

    def test_missing_block_ends_both_streaks(self):
        directory = FingerprintDirectory()
        directory.record(self.KEYS[0], 0, RESIDENT)
        directory.record(self.KEYS[1], 0, SPILLED)
        # KEYS[2] unheld; KEYS[3] held again but unreachable
        directory.record(self.KEYS[3], 0, RESIDENT)
        coverage = directory.coverage(self.KEYS)
        assert coverage[0].resident_blocks == 1
        assert coverage[0].known_blocks == 2

    def test_coverage_is_per_worker(self):
        directory = FingerprintDirectory()
        for key in self.KEYS[:3]:
            directory.record(key, 0, RESIDENT)
        directory.record(self.KEYS[0], 1, RESIDENT)
        coverage = directory.coverage(self.KEYS)
        assert coverage[0].resident_blocks == 3
        assert coverage[1].resident_blocks == 1

    def test_drop_removes_holder_and_empty_entries(self):
        directory = FingerprintDirectory()
        directory.record(self.KEYS[0], 0, RESIDENT)
        directory.record(self.KEYS[0], 1, RESIDENT)
        directory.drop(self.KEYS[0], 0)
        assert directory.holders(self.KEYS[0]) == {1: RESIDENT}
        directory.drop(self.KEYS[0], 1)
        assert len(directory) == 0
        # dropping an unknown key is a no-op, not an error
        directory.drop(b"nope", 3)

    def test_publisher_translates_observer_events(self):
        directory = FingerprintDirectory()
        publisher = directory.publisher(worker_id=5)
        publisher.on_insert(b"a")
        assert directory.status(b"a", 5) == RESIDENT
        publisher.on_spill(b"a")
        assert directory.status(b"a", 5) == SPILLED
        publisher.on_restore(b"a")
        assert directory.status(b"a", 5) == RESIDENT
        publisher.on_evict(b"a")
        assert directory.status(b"a", 5) is None
        assert directory.events["insert"] == 1
        assert directory.events["evict"] == 1


class TestDirectoryTracksEngine:
    def test_worker_publishes_inserts_spills_restores(self, model, tiny_config):
        directory = FingerprintDirectory()
        worker = Worker(0, model, directory=directory,
                        enable_prefix_caching=True)
        prompt = make_prompts(tiny_config, (200,))[0]
        worker.run(make_requests([prompt], None, prefix="a"))
        worker.release("a0")
        assert directory.events["insert"] > 0
        resident = [k for k in list(directory._entries)
                    if directory.status(k, 0) == RESIDENT]
        assert len(resident) == len(directory)

        cache = worker.prefix_cache
        freed = cache.evict(cache.num_resident)
        assert freed > 0 and cache.num_spilled == freed
        assert directory.events["spill"] == freed
        spilled = [k for k in list(directory._entries)
                   if directory.status(k, 0) == SPILLED]
        assert len(spilled) == freed

        # a fresh match restores the chain → restore events flip it back
        worker.run(make_requests([prompt], None, prefix="b"))
        assert directory.events["restore"] == freed
        assert cache.num_spilled == 0


# ---------------------------------------------------------------------------
# Router placement
# ---------------------------------------------------------------------------


class _FakeWorker:
    def __init__(self, worker_id, load=0):
        self.worker_id = worker_id
        self.load = load


class TestRouterPlacement:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            Router("fastest")

    def test_rejects_empty_fleet(self):
        with pytest.raises(ConfigurationError):
            Router("round_robin").place([1, 2], [])

    def test_round_robin_cycles(self):
        router = Router("round_robin")
        workers = [_FakeWorker(i) for i in range(3)]
        picks = [router.place([1], workers).worker_id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_breaks_ties_toward_lowest_id(self):
        workers = [_FakeWorker(0, load=2), _FakeWorker(1, load=1),
                   _FakeWorker(2, load=1)]
        placement = Router("least_loaded").place([1], workers)
        assert placement.worker_id == 1

    def _directory_with_chain(self, prompt, block_size, worker_blocks):
        """Directory where worker w holds the first n leading blocks
        (worker_blocks: {worker_id: (n, status)})."""
        keys = chain_block_keys(prompt, block_size, None)
        directory = FingerprintDirectory()
        for worker_id, (n, status) in worker_blocks.items():
            for key in keys[:n]:
                directory.record(key, worker_id, status)
        return directory

    def test_cache_aware_prefers_longest_resident_prefix(self):
        prompt = list(range(4, 260))
        directory = self._directory_with_chain(
            prompt, 64, {0: (1, RESIDENT), 1: (3, RESIDENT)})
        workers = [_FakeWorker(0, load=0), _FakeWorker(1, load=5),
                   _FakeWorker(2, load=0)]
        placement = Router("cache_aware").place(
            prompt, workers, directory=directory, block_size=64)
        assert placement.worker_id == 1  # longest match beats lighter load
        assert placement.matched_tokens == 3 * 64

    def test_cache_aware_tie_breaks_toward_least_loaded(self):
        prompt = list(range(4, 260))
        directory = self._directory_with_chain(
            prompt, 64, {0: (2, RESIDENT), 2: (2, RESIDENT)})
        workers = [_FakeWorker(0, load=4), _FakeWorker(1, load=0),
                   _FakeWorker(2, load=1)]
        placement = Router("cache_aware").place(
            prompt, workers, directory=directory, block_size=64)
        assert placement.worker_id == 2

    def test_cache_aware_falls_back_to_least_loaded_on_miss(self):
        prompt = list(range(4, 260))
        workers = [_FakeWorker(0, load=3), _FakeWorker(1, load=1)]
        placement = Router("cache_aware").place(
            prompt, workers, directory=FingerprintDirectory(), block_size=64)
        assert placement.worker_id == 1
        assert placement.matched_tokens == 0
        assert placement.migrate_from is None

    def test_cache_aware_spilled_only_falls_back_without_migration(self):
        prompt = list(range(4, 260))
        directory = self._directory_with_chain(prompt, 64, {0: (3, SPILLED)})
        workers = [_FakeWorker(0, load=5), _FakeWorker(1, load=0)]
        placement = Router("cache_aware").place(
            prompt, workers, directory=directory, block_size=64)
        assert placement.worker_id == 1
        assert placement.migrate_from is None

    def test_migrate_on_miss_targets_spilled_owner(self):
        prompt = list(range(4, 260))
        directory = self._directory_with_chain(prompt, 64, {0: (3, SPILLED)})
        workers = [_FakeWorker(0, load=5), _FakeWorker(1, load=0)]
        placement = Router("cache_aware", migrate_on_miss=True).place(
            prompt, workers, directory=directory, block_size=64)
        assert placement.worker_id == 1
        assert placement.migrate_from == 0
        assert placement.migrate_tokens == 3 * 64

    def test_no_migration_when_owner_is_the_fallback_target(self):
        prompt = list(range(4, 260))
        directory = self._directory_with_chain(prompt, 64, {1: (2, SPILLED)})
        workers = [_FakeWorker(0, load=5), _FakeWorker(1, load=0)]
        placement = Router("cache_aware", migrate_on_miss=True).place(
            prompt, workers, directory=directory, block_size=64)
        assert placement.worker_id == 1
        assert placement.migrate_from is None  # local restore is cheaper

    def test_cache_aware_without_block_size_degrades_to_least_loaded(self):
        workers = [_FakeWorker(0, load=1), _FakeWorker(1, load=0)]
        placement = Router("cache_aware").place(
            [1, 2, 3], workers, directory=FingerprintDirectory(),
            block_size=None)
        assert placement.worker_id == 1


class _FakeEDFWorker(_FakeWorker):
    """Fake worker that also reports the EDF load signals (the real
    Worker API: nearest-deadline backlog and slack)."""

    def __init__(self, worker_id, load=0, backlog=0, slack=math.inf):
        super().__init__(worker_id, load)
        self._backlog = backlog
        self.nearest_deadline_slack = slack
        self.backlog_queries = []

    def deadline_backlog(self, before_slack=None):
        self.backlog_queries.append(before_slack)
        return self._backlog


class TestEDFRouting:
    def test_fewest_deadline_backlog_wins_over_load(self):
        # worker 0 is idle but holds two urgent deadlines; worker 1 is
        # busier but deadline-free — the tagged request goes to 1.
        workers = [_FakeEDFWorker(0, load=0, backlog=2, slack=0.1),
                   _FakeEDFWorker(1, load=4, backlog=0)]
        placement = Router("edf_aware").place([1], workers, deadline=0.5)
        assert placement.worker_id == 1
        assert placement.policy == "edf_aware"
        # the incoming relative deadline was threaded into the query
        assert workers[0].backlog_queries == [0.5]

    def test_backlog_tie_breaks_toward_most_slack(self):
        workers = [_FakeEDFWorker(0, load=0, backlog=1, slack=0.01),
                   _FakeEDFWorker(1, load=0, backlog=1, slack=2.0)]
        assert Router("edf_aware").place([1], workers).worker_id == 1

    def test_slack_tie_breaks_toward_least_loaded_then_lowest_id(self):
        workers = [_FakeEDFWorker(0, load=3, backlog=1, slack=1.0),
                   _FakeEDFWorker(1, load=1, backlog=1, slack=1.0),
                   _FakeEDFWorker(2, load=1, backlog=1, slack=1.0)]
        assert Router("edf_aware").place([1], workers).worker_id == 1

    def test_plain_workers_degrade_to_least_loaded(self):
        # no deadline signals at all: zero backlog / infinite slack for
        # everyone, so the ranking reduces to (load, id)
        workers = [_FakeWorker(0, load=2), _FakeWorker(1, load=1)]
        assert Router("edf_aware").place([1], workers).worker_id == 1

    def test_cluster_routes_away_from_deadline_pressed_worker(
        self, model, tiny_config
    ):
        """End to end: deadlines thread frontend → router → worker signals.

        The first urgent request lands on worker 0; the second, with a
        looser deadline, would queue behind it there, so edf_aware sends it
        to worker 1; an untagged third balances on slack toward worker 1's
        roomier deadline."""
        cluster = ClusterFrontend(model, num_workers=2,
                                  placement="edf_aware")
        prompts = make_prompts(tiny_config)
        deadlines = (5.0, 10.0, None)
        for i, (prompt, deadline) in enumerate(zip(prompts, deadlines)):
            cluster.submit(Request(
                request_id=f"e{i}", prompt_ids=prompt,
                sampling=SamplingParams(max_new_tokens=2),
                qos=RequestQoS(deadline=deadline)))
        assert [p.worker_id for p in cluster.placements] == [0, 1, 1]
        finals = cluster.run()
        assert all(out.finish_reason == "length" for out in finals.values())


# ---------------------------------------------------------------------------
# Chain export / import
# ---------------------------------------------------------------------------


class TestChainExportImport:
    def _warm_engine(self, model, prompt, request_id="w0"):
        engine = InferenceEngine(model, enable_prefix_caching=True)
        engine.run(make_requests([prompt], None, prefix=request_id))
        engine.release(f"{request_id}0")
        return engine

    def test_export_miss_returns_none(self, model, tiny_config):
        engine = self._warm_engine(model, make_prompts(tiny_config, (200,))[0])
        assert engine.prefix_cache.export_chain(list(range(4, 100))) is None

    def test_round_trip_is_bitwise(self, model, tiny_config):
        prompt = make_prompts(tiny_config, (200,))[0]
        source = self._warm_engine(model, prompt)
        exported = source.prefix_cache.export_chain(prompt)
        assert exported is not None and exported.num_blocks > 0

        target = InferenceEngine(model, enable_prefix_caching=True)
        written = target.prefix_cache.import_chain(exported)
        assert written == exported.num_blocks
        # exporting back from the target must reproduce the same bytes
        back = target.prefix_cache.export_chain(prompt)
        assert back is not None and back.num_blocks == exported.num_blocks
        for a, b in zip(exported.nodes, back.nodes):
            assert np.array_equal(a.token_ids, b.token_ids)
            assert np.array_equal(a.keys.decode(), b.keys.decode())
            assert np.array_equal(a.values.decode(), b.values.decode())

    def test_export_of_spilled_chain_leaves_source_intact(
        self, model, tiny_config
    ):
        prompt = make_prompts(tiny_config, (200,))[0]
        source = self._warm_engine(model, prompt)
        cache = source.prefix_cache
        cache.evict(cache.num_resident)
        assert cache.num_spilled > 0
        exported = cache.export_chain(prompt)
        assert exported is not None
        assert exported.disk_blocks == cache.num_spilled  # still parked

    def test_import_truncates_under_capacity_pressure(self, model, tiny_config):
        prompt = make_prompts(tiny_config, (200,))[0]
        source = self._warm_engine(model, prompt)
        exported = source.prefix_cache.export_chain(prompt)
        assert exported.num_blocks >= 2
        # a hookless allocator exposes the raw CapacityError path
        config = tiny_config
        from repro.llm.kvcache import BlockAllocator
        from repro.serve import PrefixCache
        allocator = BlockAllocator(config.num_layers, config.num_kv_heads,
                                   config.head_dim, block_size=64,
                                   capacity_blocks=1)
        cache = PrefixCache(allocator)
        written = cache.import_chain(exported)
        assert written == 1  # a valid shorter prefix, not a failure
        assert len(cache) == 1

    def test_import_under_engine_pressure_stays_consistent(
        self, model, tiny_config
    ):
        """With the engine's eviction hook wired, a too-small pool may spill
        or reclaim imported blocks mid-import; whatever survives must be a
        reachable chain that still serves byte-identical requests."""
        prompt = make_prompts(tiny_config, (200,))[0]
        source = self._warm_engine(model, prompt)
        exported = source.prefix_cache.export_chain(prompt)
        target = InferenceEngine(model, enable_prefix_caching=True,
                                 kv_pool_blocks=1)
        written = target.prefix_cache.import_chain(exported)
        assert 0 <= written <= exported.num_blocks
        # every surviving index entry is reachable from the chain root
        cache = target.prefix_cache
        for node in cache._nodes.values():
            walk = node
            while walk.parent is not None:
                assert walk.parent.key in cache._nodes
                walk = walk.parent
        # and a lookup over the imported prompt doesn't trip on stale state
        cache.match(prompt)

    def test_imported_chain_serves_prefix_hits(self, model, tiny_config):
        prompt = make_prompts(tiny_config, (200,))[0]
        source = self._warm_engine(model, prompt)
        exported = source.prefix_cache.export_chain(prompt)

        cold = InferenceEngine(model, enable_prefix_caching=True)
        warm = InferenceEngine(model, enable_prefix_caching=True)
        warm.prefix_cache.import_chain(exported)
        followup = prompt + list(range(4, 44))
        out_cold = cold.run(make_requests([followup], None, prefix="c"))["c0"]
        out_warm = warm.run(make_requests([followup], None, prefix="c"))["c0"]
        assert warm.metrics.prefix_cache_hit_tokens > 0
        assert out_warm.token_ids == out_cold.token_ids
        assert np.array_equal(out_warm.logits, out_cold.logits)


# ---------------------------------------------------------------------------
# Cluster byte-identity
# ---------------------------------------------------------------------------


class TestLossyChainTransfer:
    """Lossy codecs on the opt-in surfaces: chain export and migration.

    No byte-identity claim here — lossy restores are bound-accurate only,
    and the bound is declared on every encoded tensor."""

    def test_lossy_export_decodes_within_declared_bound(
        self, model, tiny_config
    ):
        from repro.llm.kvcodec import IntQuantCodec

        prompt = make_prompts(tiny_config, (200,))[0]
        engine = InferenceEngine(model, enable_prefix_caching=True)
        engine.run(make_requests([prompt], None, prefix="w"))
        engine.release("w0")
        exact = engine.prefix_cache.export_chain(prompt)  # raw reference
        lossy = engine.prefix_cache.export_chain(
            prompt, codec=IntQuantCodec(4, model.config.dtype_bytes)
        )
        assert lossy.kv_wire_nbytes < exact.kv_wire_nbytes // 2
        for ref_node, node in zip(exact.nodes, lossy.nodes):
            for ref_enc, enc in ((ref_node.keys, node.keys),
                                 (ref_node.values, node.values)):
                assert enc.error_bound is not None
                err = np.max(np.abs(enc.decode() - ref_enc.decode()))
                assert 0.0 < err <= enc.error_bound

    def test_lossy_spilled_chain_migrates_compressed(self, model, tiny_config):
        """int4 spill tier + migration: the shipped chain rides the wire in
        its parked quantised form and still serves the follow-up request."""
        prompt = make_prompts(tiny_config, (200,))[0]
        followup = prompt + list(range(4, 74))
        cluster = ClusterFrontend(model, num_workers=2,
                                  placement="cache_aware",
                                  migrate_on_miss=True,
                                  kv_spill_codec="int4")
        cluster.run(make_requests([prompt], None, prefix="warm"))
        cluster.release("warm0")
        owner = cluster.workers[0]
        owner.prefix_cache.evict(owner.prefix_cache.num_resident)
        assert owner.prefix_cache.num_spilled > 0
        owner.submit(make_requests(
            [make_prompts(tiny_config, (150,), seed=3)[0]], None,
            max_new_tokens=48, prefix="fill")[0])

        cluster.submit(make_requests([followup], None, prefix="f")[0])
        assert cluster.placements[-1].migrate_from == 0
        outputs = cluster.run()
        assert cluster.metrics.migrations == 1
        # The parked int4 payloads are what crossed the links.
        metrics = cluster.metrics
        assert metrics.migrated_kv_wire_bytes < metrics.migrated_kv_bytes / 2
        assert metrics.migration_compression_ratio > 2.0
        assert outputs["f0"].finished
        assert outputs["f0"].metrics.cached_prefix_tokens > 0

    def test_lossy_migration_codec_accepted(self, model, tiny_config):
        cluster = ClusterFrontend(model, num_workers=2,
                                  migration_codec="int4-outlier")
        assert cluster.migration_codec.name == "int4-outlier"
        assert not cluster.migration_codec.lossless


def _reference_outputs(model, tiny_config, policy_name):
    """Single-engine outputs for the standard prompt set under one policy."""
    engine = InferenceEngine(model)
    prompts = make_prompts(tiny_config)
    return engine.run(make_requests(prompts, policy_name))


class TestClusterByteIdentity:
    _refs = {}

    def _reference(self, model, tiny_config, policy_name):
        if policy_name not in self._refs:
            self._refs[policy_name] = _reference_outputs(
                model, tiny_config, policy_name)
        return self._refs[policy_name]

    @pytest.mark.parametrize("policy_name", CLUSTER_POLICIES)
    @pytest.mark.parametrize("placement", ROUTING_POLICIES)
    @pytest.mark.parametrize("num_workers", (1, 2, 4))
    def test_placement_changes_only_the_clock(
        self, model, tiny_config, policy_name, placement, num_workers
    ):
        reference = self._reference(model, tiny_config, policy_name)
        cluster = ClusterFrontend(model, num_workers=num_workers,
                                  placement=placement)
        prompts = make_prompts(tiny_config)
        outputs = cluster.run(make_requests(prompts, policy_name))
        assert outputs.keys() == reference.keys()
        for request_id, ref in reference.items():
            out = outputs[request_id]
            assert out.token_ids == ref.token_ids
            assert np.array_equal(out.logits, ref.logits)

    @pytest.mark.parametrize("migration_codec", ("raw", "byteplane"))
    def test_migrated_chain_request_is_byte_identical(
        self, model, tiny_config, migration_codec
    ):
        prompt = make_prompts(tiny_config, (200,))[0]
        followup = prompt + list(range(4, 74))

        cluster = ClusterFrontend(model, num_workers=2,
                                  placement="cache_aware",
                                  migrate_on_miss=True,
                                  migration_codec=migration_codec)
        cluster.run(make_requests([prompt], None, prefix="warm"))
        cluster.release("warm0")
        owner = cluster.workers[0]
        owner.prefix_cache.evict(owner.prefix_cache.num_resident)
        assert owner.prefix_cache.num_spilled > 0
        # load the owner so least-loaded fallback picks the other worker
        owner.submit(make_requests(
            [make_prompts(tiny_config, (150,), seed=3)[0]], None,
            max_new_tokens=48, prefix="fill")[0])

        cluster.submit(make_requests([followup], None, prefix="f")[0])
        placement = cluster.placements[-1]
        assert placement.worker_id == 1
        assert placement.migrate_from == 0
        outputs = cluster.run()
        assert cluster.metrics.migrations == 1
        assert cluster.metrics.migrated_blocks > 0
        assert cluster.metrics.migration_seconds > 0
        # wire accounting: the transfer carries the parked/encoded sizes
        assert cluster.metrics.migrated_kv_wire_bytes > 0
        assert cluster.metrics.migration_compression_ratio > 0.0
        assert cluster.metrics.as_dict()["migrated_kv_wire_bytes"] == (
            cluster.metrics.migrated_kv_wire_bytes
        )
        # the migrated chain actually served the request on the target
        assert outputs["f0"].metrics.cached_prefix_tokens > 0

        single = InferenceEngine(model)
        ref = single.run(make_requests([followup], None, prefix="f"))["f0"]
        assert outputs["f0"].token_ids == ref.token_ids
        assert np.array_equal(outputs["f0"].logits, ref.logits)

    @pytest.mark.parametrize("placement", ROUTING_POLICIES)
    def test_fuzz_mid_run_submits_and_aborts(
        self, model, tiny_config, placement
    ):
        """Randomized interleaving: requests trickle in mid-run, a subset is
        aborted, and half carry random deadlines (spanning hopeless to
        generous); every surviving request stays byte-identical to a
        sequential single-engine run, and every deadline shed was genuinely
        past its deadline (or provably unmeetable) when dropped."""
        rng = np.random.default_rng(42)
        lengths = rng.integers(100, 200, size=8).tolist()
        prompts = make_prompts(tiny_config, lengths, seed=21)
        policies = [None if i % 2 == 0 else "pqcache"
                    for i in range(len(prompts))]
        deadlines = [float(10.0 ** rng.uniform(-9.0, 1.0)) if i % 2 == 1
                     else None for i in range(len(prompts))]
        aborted = {"r2", "r5"}

        reference = {}
        for i, (prompt, policy_name) in enumerate(zip(prompts, policies)):
            engine = InferenceEngine(model)
            reference.update(engine.run(make_requests(
                [prompt], policy_name, max_new_tokens=4, prefix=f"r{i}--")))

        cluster = ClusterFrontend(model, num_workers=3, placement=placement)
        pending = [
            Request(request_id=f"r{i}", prompt_ids=prompt,
                    sampling=SamplingParams(max_new_tokens=4),
                    policy_spec=(None if policy_name is None
                                 else PolicySpec.named(policy_name, BUDGET)),
                    qos=RequestQoS(deadline=deadlines[i]))
            for i, (prompt, policy_name) in enumerate(zip(prompts, policies))
        ]
        finals = {}
        step = 0
        aborts_done = set()
        # two requests up front, the rest submitted/aborted mid-run
        for _ in range(2):
            cluster.submit(pending.pop(0))
        while cluster.has_unfinished or pending:
            if pending and rng.random() < 0.6:
                cluster.submit(pending.pop(0))
            for output in cluster.step():
                if output.finished:
                    finals[output.request_id] = output
            step += 1
            if step >= 3:
                for request_id in aborted - aborts_done:
                    if (request_id in cluster._assignment
                            and request_id not in finals):
                        cluster.abort(request_id)
                        aborts_done.add(request_id)

        shed = set()
        for request_id, out in finals.items():
            if out.finish_reason != "deadline":
                continue
            shed.add(request_id)
            index = int(request_id[1:])
            assert deadlines[index] is not None
            worker = cluster.worker_of(request_id)
            missed = out.metrics.finish_time > out.metrics.deadline
            infeasible = (
                worker.min_ttft_lower_bound(len(prompts[index]))
                > deadlines[index]
            )
            assert missed or infeasible, (
                f"{request_id} shed before its deadline"
            )
        survivors = {rid: out for rid, out in finals.items()
                     if out.finish_reason == "length"}
        # every non-aborted, non-shed request must survive (an aborted one
        # may also finish first if its abort raced its last decode step)
        must_survive = (
            {f"r{i}" for i in range(len(prompts))} - aborts_done - shed
        )
        assert must_survive <= set(survivors)
        for request_id, out in survivors.items():
            ref = reference[f"{request_id}--0"]
            assert out.token_ids == ref.token_ids
            assert np.array_equal(out.logits, ref.logits)


# ---------------------------------------------------------------------------
# Frontend plumbing + fleet metrics
# ---------------------------------------------------------------------------


class TestClusterFrontend:
    def test_rejects_zero_workers(self, model):
        with pytest.raises(ConfigurationError):
            ClusterFrontend(model, num_workers=0)

    def test_rejects_duplicate_request_ids(self, model, tiny_config):
        cluster = ClusterFrontend(model, num_workers=2)
        request = make_requests(make_prompts(tiny_config, (120,)), None)[0]
        cluster.submit(request)
        with pytest.raises(ConfigurationError):
            cluster.submit(Request(request_id=request.request_id,
                                   prompt_ids=[4, 5, 6],
                                   sampling=SamplingParams(max_new_tokens=1)))
        cluster.run()

    def test_worker_of_unknown_request_raises(self, model):
        cluster = ClusterFrontend(model, num_workers=2)
        with pytest.raises(ConfigurationError):
            cluster.worker_of("ghost")

    def test_output_routing_and_release(self, model, tiny_config):
        cluster = ClusterFrontend(model, num_workers=2,
                                  placement="round_robin")
        requests = make_requests(make_prompts(tiny_config), None)
        finals = cluster.run(requests)
        for request in requests:
            via_lookup = cluster.final_output(request.request_id)
            assert via_lookup.token_ids == finals[request.request_id].token_ids
            cluster.release(request.request_id)

    def test_describe_shape(self, model, tiny_config):
        cluster = ClusterFrontend(model, num_workers=2)
        cluster.run(make_requests(make_prompts(tiny_config, (120,)), None))
        report = cluster.describe()
        assert report["num_workers"] == 2
        assert report["placement"] == "cache_aware"
        assert len(report["workers"]) == 2
        assert {"fleet", "migration", "directory"} <= report.keys()

    def test_add_request_alias(self, model, tiny_config):
        cluster = ClusterFrontend(model, num_workers=2)
        request = make_requests(make_prompts(tiny_config, (120,)), None)[0]
        cluster.add_request(request)
        finals = cluster.run()
        assert request.request_id in finals

    def test_caching_disabled_fleet_degrades_to_load_balancing(
        self, model, tiny_config
    ):
        """cache_aware without prefix caching has no directory signal or
        block size — it degrades to least-loaded and stays byte-identical."""
        cluster = ClusterFrontend(model, num_workers=2,
                                  enable_prefix_caching=False)
        assert cluster.block_size is None
        prompts = make_prompts(tiny_config)
        outputs = cluster.run(make_requests(prompts, None))
        reference = InferenceEngine(model).run(make_requests(prompts, None))
        for request_id, ref in reference.items():
            assert outputs[request_id].token_ids == ref.token_ids
            assert np.array_equal(outputs[request_id].logits, ref.logits)
        assert len(cluster.directory) == 0

    def test_unpublished_worker_runs_standalone(self, model, tiny_config):
        """A Worker without a directory is a plain engine (always-cold to
        any router, but fully functional)."""
        worker = Worker(7, model, enable_prefix_caching=True)
        assert worker.directory is None
        outputs = worker.run(make_requests(make_prompts(tiny_config, (120,)),
                                           None))
        assert worker.load == 0
        assert worker.describe()["worker_id"] == 7
        assert len(outputs) == 1

    def test_fleet_metrics_merge(self, model, tiny_config):
        cluster = ClusterFrontend(model, num_workers=2,
                                  placement="round_robin")
        cluster.run(make_requests(make_prompts(tiny_config), None))
        fleet = cluster.fleet_metrics()
        per_worker = [w.metrics for w in cluster.workers]
        assert fleet.requests_finished == sum(
            m.requests_finished for m in per_worker) == len(PROMPT_LENS)
        assert fleet.generated_tokens == sum(m.generated_tokens for m in per_worker)
        # replicas overlap in wall time: fleet clock is the max, not the sum
        assert fleet.clock == max(m.clock for m in per_worker)
        assert fleet.clock < sum(m.clock for m in per_worker)


class _FakeQoSWorker(_FakeWorker):
    """Fake worker that also reports per-class load (the real Worker API)."""

    def __init__(self, worker_id, load=0, high_load=0):
        super().__init__(worker_id, load)
        self._high = high_load

    def load_at_or_above(self, priority):
        return self._high if priority > 0 else self.load


#: the standard prompt set tagged with mixed QoS (index-aligned with
#: make_prompts/make_requests ids, so untagged references line up).
CLUSTER_QOS = (
    RequestQoS(priority=2, tenant="chat", weight=2.0),
    RequestQoS(),
    RequestQoS(priority=1, tenant="batch"),
)


def make_tagged_requests(prompts, prefix="r", max_new_tokens=3):
    return [
        Request(request_id=f"{prefix}{i}", prompt_ids=prompt,
                sampling=SamplingParams(max_new_tokens=max_new_tokens),
                qos=CLUSTER_QOS[i % len(CLUSTER_QOS)])
        for i, prompt in enumerate(prompts)
    ]


class TestClusterQoS:
    """QoS tags ride through routing and migration without touching bytes."""

    @pytest.mark.parametrize("placement", ROUTING_POLICIES)
    @pytest.mark.parametrize("num_workers", (1, 2, 4))
    def test_tagged_traffic_is_byte_identical_to_untagged(
        self, model, tiny_config, placement, num_workers
    ):
        """QoS changes ordering and the clock, never the bytes: a tagged
        cluster run equals the untagged single-engine reference for every
        placement x worker-count combination."""
        reference = _reference_outputs(model, tiny_config, None)
        cluster = ClusterFrontend(model, num_workers=num_workers,
                                  placement=placement)
        outputs = cluster.run(
            make_tagged_requests(make_prompts(tiny_config)))
        assert outputs.keys() == reference.keys()
        for request_id, ref in reference.items():
            out = outputs[request_id]
            assert out.token_ids == ref.token_ids
            assert np.array_equal(out.logits, ref.logits)

    def test_tags_survive_routing_into_worker_metrics(self, model, tiny_config):
        cluster = ClusterFrontend(model, num_workers=2,
                                  placement="round_robin")
        outputs = cluster.run(
            make_tagged_requests(make_prompts(tiny_config)))
        for i, qos in enumerate(CLUSTER_QOS):
            metrics = outputs[f"r{i}"].metrics
            assert (metrics.priority, metrics.tenant) == (qos.priority, qos.tenant)
            # the owning worker bucketed the request under its class/tenant
            worker = cluster.worker_of(f"r{i}")
            assert worker.metrics.per_class[qos.priority].requests_finished >= 1
            assert worker.metrics.per_tenant[qos.tenant].requests_finished >= 1

    def test_router_counts_routed_requests_per_class(self, model, tiny_config):
        cluster = ClusterFrontend(model, num_workers=2,
                                  placement="least_loaded")
        cluster.run(make_tagged_requests(make_prompts(tiny_config)))
        assert cluster.metrics.routed_by_class == {0: 1, 1: 1, 2: 1}
        assert cluster.metrics.as_dict()["routed_by_class"] == {0: 1, 1: 1, 2: 1}

    def test_tagged_request_migrates_byte_identical(self, model, tiny_config):
        """Chain migration with a QoS-tagged follow-up: the tag rides along
        (per-request metrics, target worker buckets) and bytes still match
        the untagged single-engine run."""
        prompt = make_prompts(tiny_config, (200,))[0]
        followup = prompt + list(range(4, 74))
        cluster = ClusterFrontend(model, num_workers=2,
                                  placement="cache_aware",
                                  migrate_on_miss=True)
        cluster.run(make_requests([prompt], None, prefix="warm"))
        cluster.release("warm0")
        owner = cluster.workers[0]
        owner.prefix_cache.evict(owner.prefix_cache.num_resident)
        # The fill must outrank the follow-up's class: per-class routing
        # ignores lower-class occupancy, so a background fill would no
        # longer repel the tagged request from the owning worker.
        owner.submit(Request(
            request_id="fill0",
            prompt_ids=make_prompts(tiny_config, (150,), seed=3)[0],
            sampling=SamplingParams(max_new_tokens=48),
            qos=RequestQoS(priority=3, tenant="chat")))

        cluster.submit(Request(
            request_id="f0", prompt_ids=followup,
            sampling=SamplingParams(max_new_tokens=3),
            qos=RequestQoS(priority=2, tenant="chat")))
        assert cluster.placements[-1].migrate_from == 0
        outputs = cluster.run()
        assert cluster.metrics.migrations == 1
        assert outputs["f0"].metrics.cached_prefix_tokens > 0
        assert (outputs["f0"].metrics.priority,
                outputs["f0"].metrics.tenant) == (2, "chat")
        target = cluster.worker_of("f0")
        assert target.metrics.per_class[2].requests_finished == 1

        ref = InferenceEngine(model).run(
            make_requests([followup], None, prefix="f"))["f0"]
        assert outputs["f0"].token_ids == ref.token_ids
        assert np.array_equal(outputs["f0"].logits, ref.logits)

    def test_worker_reports_per_class_load(self, model, tiny_config):
        worker = Worker(0, model, enable_prefix_caching=True)
        requests = make_tagged_requests(make_prompts(tiny_config))
        for request in requests:
            worker.submit(request)
        # classes: 2, 0, 1 → cumulative counts from the top
        assert worker.load_at_or_above(2) == 1
        assert worker.load_at_or_above(1) == 2
        assert worker.load_at_or_above(0) == 3 == worker.load
        worker.run()
        assert worker.load_at_or_above(0) == 0

    def test_router_prefers_light_high_class_load(self):
        # worker 0 is busy with background work only; worker 1 is running
        # high-class work.  A tagged placement must ignore the background.
        workers = [_FakeQoSWorker(0, load=5, high_load=0),
                   _FakeQoSWorker(1, load=1, high_load=3)]
        assert Router("least_loaded").place(
            [1], workers, priority=2).worker_id == 0
        # untagged placement still balances on total load
        assert Router("least_loaded").place([1], workers).worker_id == 1

    def test_router_priority_degrades_without_worker_support(self):
        workers = [_FakeWorker(0, load=3), _FakeWorker(1, load=1)]
        placement = Router("least_loaded").place([1], workers, priority=2)
        assert placement.worker_id == 1  # falls back to total load

    def test_fleet_metrics_merge_per_class_buckets(self, model, tiny_config):
        cluster = ClusterFrontend(model, num_workers=2,
                                  placement="round_robin")
        cluster.run(make_tagged_requests(make_prompts(tiny_config)))
        fleet = cluster.fleet_metrics()
        per_worker = [w.metrics for w in cluster.workers]
        for priority in (0, 1, 2):
            assert fleet.per_class[priority].requests_finished == sum(
                bucket.requests_finished
                for m in per_worker
                for p, bucket in m.per_class.items() if p == priority) == 1
        for tenant in ("chat", "default", "batch"):
            assert fleet.per_tenant[tenant].requests_finished == 1
        # aggregation is read-only and idempotent: a second fleet snapshot
        # reports the same numbers and worker buckets are untouched
        again = cluster.fleet_metrics()
        assert again.per_class[2].requests_finished == 1
        assert all(m.per_class[CLUSTER_QOS[0].priority].requests_finished <= 1
                   for m in per_worker if CLUSTER_QOS[0].priority in m.per_class)


class TestEngineMetricsOps:
    def test_snapshot_is_independent(self):
        metrics = EngineMetrics()
        metrics.generated_tokens = 7
        snap = metrics.snapshot()
        metrics.generated_tokens = 99
        assert snap.generated_tokens == 7

    def test_merge_sums_counters_and_maxes_clock(self):
        a = EngineMetrics()
        a.generated_tokens, a.clock, a.requests_finished = 5, 2.0, 1
        b = EngineMetrics()
        b.generated_tokens, b.clock, b.requests_finished = 3, 6.0, 2
        merged = a.merge(b)
        assert merged is a
        assert a.generated_tokens == 8
        assert a.requests_finished == 3
        assert a.clock == 6.0

    def test_reset_restores_defaults(self):
        metrics = EngineMetrics()
        metrics.generated_tokens, metrics.clock = 11, 3.5
        metrics.reset()
        assert metrics.generated_tokens == 0
        assert metrics.clock == 0.0
