"""Chunked prefill must be bitwise identical to monolithic prefill.

The central contract of the chunked-prefill redesign: any partition of the
prompt into chunks — including one token at a time — produces the same
KVCache contents, aggregates, logits and downstream decode behaviour, bit
for bit.  ``prefill()`` itself is a thin loop over ``prefill_chunk()``, so
these tests drive both the convenience wrapper and the raw
``begin_prefill / prefill_chunk / finish_prefill`` state machine, and then
check every registered policy's decode-time selections on top.

A faithful copy of the seed's original monolithic implementation is kept
here as a reference: the rewritten kernel uses chunk-invariant reductions
(sequential scans instead of pairwise sums), so it matches the seed to tight
floating-point tolerance rather than bitwise — while remaining *exactly*
equal across chunkings.
"""

import numpy as np
import pytest

from repro.baselines import POLICY_NAMES, SelectionBudget, build_policy
from repro.errors import ConfigurationError
from repro.llm import KVCache, ModelConfig, TransformerLM, expand_kv_heads
from repro.llm.rope import apply_rope
from repro.utils import softmax

PROMPT_LEN = 48
CHUNK_SIZES = (1, 7, None)  # None = the whole prompt in one chunk

BUDGET = SelectionBudget(token_ratio=0.3, comm_ratio=1.0 / 64.0,
                         num_initial=2, num_local=8)


@pytest.fixture(scope="module")
def chunk_model():
    return TransformerLM(ModelConfig.tiny(), seed=0)


@pytest.fixture(scope="module")
def chunk_prompt(chunk_model):
    rng = np.random.default_rng(21)
    return rng.integers(4, chunk_model.config.vocab_size, size=PROMPT_LEN).tolist()


@pytest.fixture(scope="module")
def prefill_variants(chunk_model, chunk_prompt):
    """One prefill per chunk size, queries collected."""
    return {
        size: chunk_model.prefill(
            chunk_prompt, observation_window=16, collect_queries=True,
            chunk_size=size,
        )
        for size in CHUNK_SIZES
    }


def seed_monolithic_prefill(model, token_ids, observation_window=32,
                            query_block=256):
    """Faithful copy of the seed's single-shot ``TransformerLM.prefill``."""
    token_ids = np.asarray(list(token_ids), dtype=np.int64)
    cfg = model.config
    s = int(token_ids.size)
    positions = np.arange(s)
    hidden = model.embedding[token_ids]
    cache = KVCache(cfg.num_layers, cfg.num_kv_heads, cfg.head_dim)
    aggregates = []
    group = cfg.gqa_group_size
    window = min(observation_window, s)

    for layer in model.layers:
        normed = layer.attn_norm(hidden)
        q = layer.q_proj(normed).reshape(s, cfg.num_heads, cfg.head_dim)
        k = layer.k_proj(normed).reshape(s, cfg.num_kv_heads, cfg.head_dim)
        v = layer.v_proj(normed).reshape(s, cfg.num_kv_heads, cfg.head_dim)
        q = apply_rope(q.transpose(1, 0, 2), positions, base=model.rope_base)
        k = apply_rope(k.transpose(1, 0, 2), positions, base=model.rope_base)
        v = v.transpose(1, 0, 2)
        cache[len(aggregates)].append(k, v)

        k_exp = expand_kv_heads(k, group)
        v_exp = expand_kv_heads(v, group)
        acc = np.zeros((cfg.num_heads, s))
        win = np.zeros((cfg.num_heads, s))
        outputs = np.empty((cfg.num_heads, s, cfg.head_dim))
        for start in range(0, s, query_block):
            stop = min(start + query_block, s)
            logits = np.einsum("hqd,hkd->hqk", q[:, start:stop, :], k_exp)
            logits = logits / np.sqrt(cfg.head_dim)
            cols = np.arange(s)[None, :]
            rows = np.arange(start, stop)[:, None]
            logits = np.where(cols > rows, -np.inf, logits)
            scores = softmax(logits, axis=-1)
            outputs[:, start:stop, :] = np.einsum("hqk,hkd->hqd", scores, v_exp)
            acc += scores.sum(axis=1)
            overlap_start = max(start, s - window)
            if overlap_start < stop:
                win += scores[:, overlap_start - start: stop - start, :].sum(axis=1)

        aggregates.append(
            (
                acc.reshape(cfg.num_kv_heads, group, s).mean(axis=1),
                win.reshape(cfg.num_kv_heads, group, s).mean(axis=1),
            )
        )
        attn_out = outputs.transpose(1, 0, 2).reshape(s, cfg.hidden_dim)
        hidden = hidden + layer.o_proj(attn_out)
        hidden = hidden + layer.ffn(layer.ffn_norm(hidden))

    final = model.final_norm(hidden[-1])
    return cache, model.lm_head @ final, aggregates


class TestBitwiseChunkInvariance:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES[:-1])
    def test_logits_and_hidden_identical(self, prefill_variants, chunk_size):
        reference = prefill_variants[None]
        chunked = prefill_variants[chunk_size]
        assert np.array_equal(reference.logits, chunked.logits)
        assert np.array_equal(reference.last_hidden, chunked.last_hidden)

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES[:-1])
    def test_kvcache_identical(self, prefill_variants, chunk_model, chunk_size):
        reference = prefill_variants[None]
        chunked = prefill_variants[chunk_size]
        for layer in range(chunk_model.config.num_layers):
            assert np.array_equal(
                reference.kvcache[layer].keys, chunked.kvcache[layer].keys
            )
            assert np.array_equal(
                reference.kvcache[layer].values, chunked.kvcache[layer].values
            )

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES[:-1])
    def test_aggregates_and_queries_identical(self, prefill_variants, chunk_size):
        reference = prefill_variants[None]
        chunked = prefill_variants[chunk_size]
        for ref_agg, chunk_agg in zip(reference.aggregates, chunked.aggregates):
            assert np.array_equal(
                ref_agg.accumulated_scores, chunk_agg.accumulated_scores
            )
            assert np.array_equal(ref_agg.window_scores, chunk_agg.window_scores)
            assert ref_agg.observation_window == chunk_agg.observation_window
        for ref_q, chunk_q in zip(
            reference.prompt_queries, chunked.prompt_queries
        ):
            assert np.array_equal(ref_q, chunk_q)

    def test_query_block_size_is_bitwise_irrelevant(self, chunk_model, chunk_prompt):
        a = chunk_model.prefill(chunk_prompt, query_block=5)
        b = chunk_model.prefill(chunk_prompt, query_block=4096)
        assert np.array_equal(a.logits, b.logits)

    def test_uneven_manual_chunking(self, chunk_model, chunk_prompt, prefill_variants):
        """Driving the state machine with ragged chunk sizes changes nothing."""
        state = chunk_model.begin_prefill(chunk_prompt, observation_window=16,
                                          collect_queries=True)
        for size in (3, 1, 17, 11, PROMPT_LEN):  # last chunk clipped
            if state.is_complete:
                break
            chunk_model.prefill_chunk(state, size)
        result = chunk_model.finish_prefill(state)
        reference = prefill_variants[None]
        assert np.array_equal(result.logits, reference.logits)
        for layer in range(chunk_model.config.num_layers):
            assert np.array_equal(
                result.kvcache[layer].keys, reference.kvcache[layer].keys
            )


class TestAgainstSeedImplementation:
    def test_matches_seed_monolithic_to_tolerance(self, chunk_model, chunk_prompt,
                                                  prefill_variants):
        """The chunk-invariant kernel only reorders float reductions, so it
        agrees with the seed's original implementation to ~1e-12."""
        cache, logits, aggregates = seed_monolithic_prefill(
            chunk_model, chunk_prompt, observation_window=16
        )
        for chunked in prefill_variants.values():
            np.testing.assert_allclose(chunked.logits, logits, rtol=1e-10, atol=1e-12)
            assert int(np.argmax(chunked.logits)) == int(np.argmax(logits))
            for layer in range(chunk_model.config.num_layers):
                np.testing.assert_allclose(
                    chunked.kvcache[layer].keys, cache[layer].keys,
                    rtol=1e-10, atol=1e-12,
                )
            for chunk_agg, (acc, win) in zip(chunked.aggregates, aggregates):
                np.testing.assert_allclose(
                    chunk_agg.accumulated_scores, acc, rtol=1e-9, atol=1e-12
                )
                np.testing.assert_allclose(
                    chunk_agg.window_scores, win, rtol=1e-9, atol=1e-12
                )


class TestDownstreamDecodePerPolicy:
    @pytest.mark.parametrize("policy_name", POLICY_NAMES)
    def test_decode_selections_identical_across_chunkings(
        self, chunk_model, prefill_variants, policy_name
    ):
        """Policies built on any chunking's prefill pick byte-identical
        tokens and per-layer selections for several decode steps."""
        from repro.eval.runner import clone_prefill

        config = chunk_model.config
        runs = []
        for size in CHUNK_SIZES:
            prefill = clone_prefill(prefill_variants[size], config)
            policy = build_policy(policy_name, BUDGET)
            policy.on_prefill(config, prefill)
            tokens = [int(np.argmax(prefill.logits))]
            selections = []

            def selector(layer_index, query, kvcache):
                chosen = policy.select(layer_index, query, kvcache)
                if chosen is None:
                    selections.append(None)
                elif isinstance(chosen, (list, tuple)):
                    selections.append([np.asarray(c) for c in chosen])
                else:
                    selections.append(np.asarray(chosen))
                return chosen

            for _ in range(3):
                logits = chunk_model.decode_step(
                    tokens[-1], prefill.kvcache, selector
                )
                policy.on_decode_step(prefill.kvcache)
                tokens.append(int(np.argmax(logits)))
            runs.append((tokens, selections))

        reference_tokens, reference_selections = runs[0]
        for tokens, selections in runs[1:]:
            assert tokens == reference_tokens
            assert len(selections) == len(reference_selections)
            for sel, ref in zip(selections, reference_selections):
                if ref is None:
                    assert sel is None
                elif isinstance(ref, list):
                    assert all(
                        np.array_equal(a, b) for a, b in zip(sel, ref)
                    )
                else:
                    assert np.array_equal(sel, ref)


class TestPrefillStateApi:
    def test_state_reports_progress(self, chunk_model, chunk_prompt):
        state = chunk_model.begin_prefill(chunk_prompt)
        assert state.seq_len == PROMPT_LEN
        assert state.remaining_tokens == PROMPT_LEN
        assert not state.is_complete
        processed = chunk_model.prefill_chunk(state, 10)
        assert processed == 10
        assert state.num_processed == 10
        assert state.kvcache.seq_len == 10
        assert state.logits is None
        processed = chunk_model.prefill_chunk(state, 10_000)  # clipped
        assert processed == PROMPT_LEN - 10
        assert state.is_complete
        assert state.logits is not None

    def test_chunking_past_completion_rejected(self, chunk_model, chunk_prompt):
        state = chunk_model.begin_prefill(chunk_prompt)
        chunk_model.prefill_chunk(state, PROMPT_LEN)
        with pytest.raises(ConfigurationError):
            chunk_model.prefill_chunk(state, 1)

    def test_zero_chunk_rejected(self, chunk_model, chunk_prompt):
        state = chunk_model.begin_prefill(chunk_prompt)
        with pytest.raises(ConfigurationError):
            chunk_model.prefill_chunk(state, 0)

    def test_finish_before_complete_rejected(self, chunk_model, chunk_prompt):
        state = chunk_model.begin_prefill(chunk_prompt)
        chunk_model.prefill_chunk(state, 5)
        with pytest.raises(ConfigurationError):
            chunk_model.finish_prefill(state)

    def test_empty_prompt_rejected(self, chunk_model):
        with pytest.raises(ConfigurationError):
            chunk_model.begin_prefill([])
