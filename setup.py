"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on this offline machine falls back to the legacy
setuptools code path (``--no-use-pep517``), which requires a ``setup.py``.
All metadata lives in ``pyproject.toml``; this file only delegates.
"""

from setuptools import setup

setup()
